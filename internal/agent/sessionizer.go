package agent

import (
	"time"

	"deepflow/internal/protocols"
	"deepflow/internal/selfmon"
	"deepflow/internal/trace"
)

// MessageEvent is one classified message observed at a capture point —
// either a syscall (eBPF/uprobe) or a packet (cBPF/AF_PACKET). It is the
// "message data" of paper §3.3.1 after type inference.
type MessageEvent struct {
	Source  trace.Source
	TapSide trace.TapSide
	Host    string

	// Flow identity. Socket is zero for packet taps; FlowKey then falls
	// back to the canonical tuple.
	Socket trace.SocketID
	Tuple  trace.FiveTuple // oriented in travel direction
	Seq    uint32

	Dir   trace.Direction
	Start time.Time
	End   time.Time

	// Program information (zero for packet taps).
	PID      uint32
	TID      uint32
	Coro     uint64
	ProcName string

	// NoThreadContext marks spans from event-loop proxies whose thread
	// identity is meaningless for causality; they skip systrace
	// assignment and rely on X-Request-IDs.
	NoThreadContext bool

	Payload []byte
	DataLen int
}

// WindowDuration is the session-aggregation time slot (paper §3.3.1:
// "DeepFlow presently sets the duration of each time slot to 60 seconds").
const WindowDuration = 60 * time.Second

// Sessionizer aggregates request and response messages of the same flow
// into sessions and emits one span per session. One Sessionizer serves one
// capture point (a kernel's syscall stream, or one NIC's packet stream).
type Sessionizer struct {
	ids    *trace.IDAllocator
	tracer *SysTracer // nil for packet taps (no thread context)
	extra  []protocols.Codec

	flows map[flowKey]*flowState

	// window is the time-window array bounding session aggregation and
	// expiry (paper §3.3.1).
	window *TimeWindow

	// Emit receives completed spans.
	Emit func(*trace.Span)

	// Stats.
	Inferred    map[trace.L7Proto]int
	Unparsable  int
	OrphanResps int

	// Self-monitoring (nil when uninstrumented; see instrument).
	mon      *selfmon.Registry
	capture  string
	mMiss    *selfmon.Counter
	mOrphans *selfmon.Counter
	mEvict   *selfmon.Counter
}

type flowKey struct {
	sock   trace.SocketID
	tuple  trace.FiveTuple // canonical; used when sock == 0
	uprobe bool            // uprobe plaintext keeps separate state from TLS ciphertext
}

type flowState struct {
	codec    protocols.Codec
	inferTry int

	// Open requests: FIFO for pipeline protocols, by stream ID for
	// parallel protocols.
	fifo   []*openRequest
	byID   map[uint64]*openRequest
	lastRx *contState // ingress continuation
	lastTx *contState // egress continuation
}

type contState struct {
	remaining int
	req       *openRequest // message being extended (nil for responses)
	end       *time.Time
}

type openRequest struct {
	ev       MessageEvent
	msg      protocols.Message
	systrace trace.SysTraceID
	pseudo   uint64
	slot     int64
	done     bool // matched or expired; lazily removed from queues
}

// NewSessionizer creates a sessionizer; tracer may be nil for packet
// streams, extra holds user-supplied protocol codecs (paper §3.3.1:
// "optional user-supplied protocol specifications").
func NewSessionizer(ids *trace.IDAllocator, tracer *SysTracer, extra []protocols.Codec, emit func(*trace.Span)) *Sessionizer {
	return &Sessionizer{
		ids:      ids,
		tracer:   tracer,
		extra:    extra,
		flows:    make(map[flowKey]*flowState),
		window:   NewTimeWindow(WindowDuration),
		Emit:     emit,
		Inferred: make(map[trace.L7Proto]int),
	}
}

// SetWindow replaces the session-aggregation slot duration. Call it before
// feeding any events; existing open requests are not re-slotted.
func (sz *Sessionizer) SetWindow(slotDur time.Duration) {
	sz.window = NewTimeWindow(slotDur)
}

// instrument registers this sessionizer's self-metrics under its capture
// point tag ("syscall" or "packet"): protocol-inference hits and misses,
// parse errors, orphan responses, window occupancy, and evictions.
func (sz *Sessionizer) instrument(mon *selfmon.Registry, capture string) {
	sz.mon = mon
	sz.capture = capture
	tag := selfmon.Tag{K: "capture", V: capture}
	sz.mMiss = mon.Counter("deepflow_agent_inference_misses", tag)
	sz.mOrphans = mon.Counter("deepflow_agent_orphan_responses", tag)
	sz.mEvict = mon.Counter("deepflow_agent_window_evictions", tag)
	mon.GaugeFunc("deepflow_agent_window_occupancy",
		func() float64 { return float64(sz.window.Len()) }, tag)
}

func (sz *Sessionizer) key(ev *MessageEvent) flowKey {
	if ev.Socket != 0 {
		return flowKey{sock: ev.Socket, uprobe: ev.Source == trace.SourceUProbe}
	}
	return flowKey{tuple: ev.Tuple.Canonical()}
}

// Feed processes one message event, possibly emitting a completed span.
func (sz *Sessionizer) Feed(ev MessageEvent) {
	k := sz.key(&ev)
	fs := sz.flows[k]
	if fs == nil {
		fs = &flowState{byID: make(map[uint64]*openRequest)}
		sz.flows[k] = fs
	}

	// Continuation syscalls of a long message extend it rather than
	// starting a new one (paper §3.3.1: "we only process the first system
	// call for a message").
	cont := fs.lastTx
	if ev.Dir == trace.DirIngress {
		cont = fs.lastRx
	}
	if cont != nil && cont.remaining > 0 {
		cont.remaining -= ev.DataLen
		if cont.end != nil {
			*cont.end = ev.End
		}
		return
	}

	// One-shot protocol inference per flow (retried until first success).
	if fs.codec == nil {
		fs.codec = protocols.Infer(ev.Payload, sz.extra)
		if fs.codec == nil {
			fs.inferTry++
			sz.Unparsable++
			if sz.mMiss != nil {
				sz.mMiss.Inc()
			}
			return
		}
		sz.Inferred[fs.codec.Proto()]++
		if sz.mon != nil {
			sz.mon.Counter("deepflow_agent_inference_hits",
				selfmon.Tag{K: "capture", V: sz.capture},
				selfmon.Tag{K: "proto", V: fs.codec.Proto().String()}).Inc()
		}
	}
	// Encrypted flows carry no parseable syscall payloads; their spans
	// come from the uprobe plaintext stream instead.
	if fs.codec.Proto() == trace.L7TLS {
		return
	}

	msg, err := fs.codec.Parse(ev.Payload)
	if err != nil {
		sz.Unparsable++
		if sz.mon != nil {
			sz.mon.Counter("deepflow_agent_parse_errors",
				selfmon.Tag{K: "capture", V: sz.capture},
				selfmon.Tag{K: "proto", V: fs.codec.Proto().String()}).Inc()
		}
		return
	}

	switch msg.Type {
	case trace.MsgRequest:
		sz.feedRequest(fs, ev, msg)
	case trace.MsgResponse:
		sz.feedResponse(fs, ev, msg)
	}
}

func (sz *Sessionizer) feedRequest(fs *flowState, ev MessageEvent, msg protocols.Message) {
	req := &openRequest{ev: ev, msg: msg, slot: sz.slotOf(ev.Start)}
	if sz.tracer != nil && !ev.NoThreadContext {
		req.systrace = sz.tracer.Observe(ev.PID, ev.TID, ev.Coro, ev.Socket, ev.Dir, msg.Type)
		req.pseudo = sz.tracer.PseudoThread(ev.Coro)
	}
	if msg.TotalLen > ev.DataLen {
		cs := &contState{remaining: msg.TotalLen - ev.DataLen, req: req, end: &req.ev.End}
		sz.setCont(fs, ev.Dir, cs)
	}
	if protocols.IsParallel(msg.Proto) {
		fs.byID[msg.StreamID] = req
	} else {
		fs.fifo = append(fs.fifo, req)
	}
	sz.window.Add(req)
}

func (sz *Sessionizer) setCont(fs *flowState, dir trace.Direction, cs *contState) {
	if dir == trace.DirIngress {
		fs.lastRx = cs
	} else {
		fs.lastTx = cs
	}
}

func (sz *Sessionizer) feedResponse(fs *flowState, ev MessageEvent, msg protocols.Message) {
	if sz.tracer != nil && !ev.NoThreadContext {
		sz.tracer.Observe(ev.PID, ev.TID, ev.Coro, ev.Socket, ev.Dir, msg.Type)
	}
	var req *openRequest
	if protocols.IsParallel(msg.Proto) {
		req = fs.byID[msg.StreamID]
		delete(fs.byID, msg.StreamID)
		if req != nil && req.done {
			req = nil // expired before the response arrived
		}
	} else {
		// Pop the oldest open request, skipping any already expired.
		for len(fs.fifo) > 0 {
			cand := fs.fifo[0]
			fs.fifo = fs.fifo[1:]
			if !cand.done {
				req = cand
				break
			}
		}
	}
	if msg.TotalLen > ev.DataLen {
		sz.setCont(fs, ev.Dir, &contState{remaining: msg.TotalLen - ev.DataLen})
	}
	if req == nil {
		sz.OrphanResps++
		if sz.mOrphans != nil {
			sz.mOrphans.Inc()
		}
		sz.emitSpan(nil, &ev, &msg)
		return
	}
	// Aggregation only within the same or adjacent window slot (paper
	// §3.3.1); responses beyond that mean the request already flushed.
	if !sz.window.Adjacent(req.slot, sz.slotOf(ev.Start)) {
		sz.OrphanResps++
		if sz.mOrphans != nil {
			sz.mOrphans.Inc()
		}
		sz.markTimeout(req)
		sz.emitSpan(nil, &ev, &msg)
		return
	}
	req.done = true
	sz.emitSpan(req, &ev, &msg)
}

func (sz *Sessionizer) slotOf(t time.Time) int64 { return sz.window.SlotOf(t) }

// emitSpan builds one span from a (request, response) session. Either side
// may be missing: a nil req yields an orphan-response span, a nil resp
// (via emitTimeout) a timeout span.
func (sz *Sessionizer) emitSpan(req *openRequest, respEv *MessageEvent, respMsg *protocols.Message) {
	sp := &trace.Span{ID: sz.ids.NextSpanID()}

	if req != nil {
		ev, msg := &req.ev, &req.msg
		sp.Source = ev.Source
		sp.TapSide = ev.TapSide
		sp.HostName = ev.Host
		sp.Socket = ev.Socket
		sp.Flow = requestFlow(ev)
		sp.L7 = msg.Proto
		sp.StartTime = ev.Start
		sp.ReqTCPSeq = ev.Seq
		sp.PID, sp.TID, sp.CoroutineID, sp.ProcessName = ev.PID, ev.TID, ev.Coro, ev.ProcName
		sp.SysTraceID = req.systrace
		sp.PseudoThreadID = req.pseudo
		sp.RequestType = msg.Method
		sp.RequestResource = msg.Resource
		sp.XRequestID = msg.Header("x-request-id")
		if tp := msg.Header("traceparent"); tp != "" {
			tid, spanID := parseTraceparent(tp)
			sp.TraceID = tid
			sp.ParentSpanRef = spanID
		} else if b3 := msg.Header("b3"); b3 != "" {
			tid, spanID := parseB3(b3)
			sp.TraceID = tid
			sp.ParentSpanRef = spanID
		}
	}
	if respEv != nil {
		if req == nil {
			ev := respEv
			sp.Source = ev.Source
			sp.TapSide = ev.TapSide
			sp.HostName = ev.Host
			sp.Socket = ev.Socket
			sp.Flow = ev.Tuple.Reverse() // orient request-ward
			sp.L7 = respMsg.Proto
			sp.StartTime = ev.Start
			sp.PID, sp.TID, sp.CoroutineID, sp.ProcessName = ev.PID, ev.TID, ev.Coro, ev.ProcName
		}
		sp.EndTime = respEv.End
		sp.RespTCPSeq = respEv.Seq
		sp.ResponseCode = respMsg.Code
		sp.ResponseStatus = respMsg.Status
		// Proxies add X-Request-ID on the response path too; a session
		// whose request had none can still be associated through it.
		if sp.XRequestID == "" {
			sp.XRequestID = respMsg.Header("x-request-id")
		}
	}
	if sp.EndTime.IsZero() {
		sp.EndTime = sp.StartTime
	}
	sz.Emit(sp)
}

// requestFlow orients the span's flow client→server: the request travels
// toward the server, so the request tuple already points that way.
func requestFlow(ev *MessageEvent) trace.FiveTuple { return ev.Tuple }

// Flush emits timeout spans for requests older than two window slots by
// popping expired slots from the time-window array. Call it periodically
// and at shutdown.
func (sz *Sessionizer) Flush(now time.Time) {
	for _, req := range sz.window.Expire(now) {
		sz.markTimeout(req)
	}
}

func (sz *Sessionizer) markTimeout(req *openRequest) {
	req.done = true
	if sz.mEvict != nil {
		sz.mEvict.Inc()
	}
	old := sz.Emit
	sz.Emit = func(s *trace.Span) {
		s.ResponseStatus = "timeout"
		old(s)
	}
	sz.emitSpan(req, nil, nil)
	sz.Emit = old
}

// FlushAll emits timeout spans for every open request regardless of age.
func (sz *Sessionizer) FlushAll() {
	for _, req := range sz.window.Drain() {
		sz.markTimeout(req)
	}
	for _, fs := range sz.flows {
		fs.fifo = nil
		for id := range fs.byID {
			delete(fs.byID, id)
		}
	}
}

// parseTraceparent extracts (trace id, span id) from a W3C traceparent
// header: "00-<32 hex>-<16 hex>-<flags>".
func parseTraceparent(v string) (traceID, spanID string) {
	parts := splitDash(v)
	if len(parts) >= 3 {
		return parts[1], parts[2]
	}
	return "", ""
}

// parseB3 extracts (trace id, span id) from a single-header B3 value:
// "<traceid>-<spanid>-<sampled>".
func parseB3(v string) (traceID, spanID string) {
	parts := splitDash(v)
	if len(parts) >= 2 {
		return parts[0], parts[1]
	}
	return "", ""
}

func splitDash(v string) []string {
	var out []string
	start := 0
	for i := 0; i < len(v); i++ {
		if v[i] == '-' {
			out = append(out, v[start:i])
			start = i + 1
		}
	}
	return append(out, v[start:])
}

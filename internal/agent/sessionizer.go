package agent

import (
	"time"

	"deepflow/internal/protocols"
	"deepflow/internal/selfmon"
	"deepflow/internal/trace"
)

// MessageEvent is one classified message observed at a capture point —
// either a syscall (eBPF/uprobe) or a packet (cBPF/AF_PACKET). It is the
// "message data" of paper §3.3.1 after type inference.
type MessageEvent struct {
	Source  trace.Source
	TapSide trace.TapSide
	Host    string

	// Flow identity. Socket is zero for packet taps; FlowKey then falls
	// back to the canonical tuple.
	Socket trace.SocketID
	Tuple  trace.FiveTuple // oriented in travel direction
	Seq    uint32

	Dir   trace.Direction
	Start time.Time
	End   time.Time

	// Program information (zero for packet taps).
	PID      uint32
	TID      uint32
	Coro     uint64
	ProcName string

	// NoThreadContext marks spans from event-loop proxies whose thread
	// identity is meaningless for causality; they skip systrace
	// assignment and rely on X-Request-IDs.
	NoThreadContext bool

	Payload []byte
	DataLen int
}

// WindowDuration is the session-aggregation time slot (paper §3.3.1:
// "DeepFlow presently sets the duration of each time slot to 60 seconds").
const WindowDuration = 60 * time.Second

// InferMaxTries caps protocol inference attempts per flow. A flow whose
// first messages match no codec almost never starts matching later; after
// this many misses the flow is marked given-up and the all-codec probe is
// retired (the per-message accounting stays).
const InferMaxTries = 8

// Sessionizer aggregates request and response messages of the same flow
// into sessions and emits one span per session. One Sessionizer serves one
// capture point (a kernel's syscall stream, or one NIC's packet stream).
//
// Feed is split into a fast path and a slow path. Established flows whose
// codec offers a lightweight header parse take the fast path for
// responses: flow-state fetch, continuation accounting, flow-metric
// updates, and ParseHeader (message type + stream ID + status only) — no
// resource strings, no header maps. First-seen flows, session boundaries
// (requests, which must capture resources and propagation headers for the
// span), and full span construction take the slow path.
type Sessionizer struct {
	ids    *trace.IDAllocator
	tracer *SysTracer // nil for packet taps (no thread context)
	table  *protocols.Table

	flows map[flowKey]*flowState

	// window is the time-window array bounding session aggregation and
	// expiry (paper §3.3.1).
	window *TimeWindow

	// Block allocators for the two per-session heap objects.
	spans spanArena
	reqs  reqArena

	// Emit receives completed spans.
	Emit func(*trace.Span)

	// DisableFastPath forces every message through the slow path (full
	// Parse). It exists so the dfbench agent experiment can measure the
	// fast path against an honest all-slow-path baseline; production
	// deployments leave it false.
	DisableFastPath bool

	// Stats.
	Inferred     map[trace.L7Proto]int
	Unparsable   int
	OrphanResps  int
	InferGiveups int
	FastPathHits int
	SlowPathMsgs int
	FlowMsgs     uint64
	FlowBytes    uint64

	// Self-monitoring (nil when uninstrumented; see instrument).
	mon       *selfmon.Registry
	capture   string
	mMiss     *selfmon.Counter
	mOrphans  *selfmon.Counter
	mEvict    *selfmon.Counter
	mGiveups  *selfmon.Counter
	mFastHits *selfmon.Counter
	mSlowMsgs *selfmon.Counter
}

type flowKey struct {
	sock   trace.SocketID
	tuple  trace.FiveTuple // canonical; used when sock == 0
	uprobe bool            // uprobe plaintext keeps separate state from TLS ciphertext
}

type flowState struct {
	codec    protocols.Codec
	inferTry int
	gaveUp   bool // inference retry budget exhausted

	// Traits cached at inference time so the per-message path never
	// consults the registry again.
	parallel bool
	header   protocols.HeaderParser // non-nil when fast-path eligible
	isTLS    bool

	// reqDir is the direction requests travel on this flow, learned from
	// the first parsed request. Zero until then. The fast-path probe only
	// runs on messages travelling the other way, so requests never pay
	// for a ParseHeader that full Parse will redo.
	reqDir trace.Direction

	// Per-flow message metrics, updated on both paths.
	msgs  uint64
	bytes uint64

	// Open requests: FIFO for pipeline protocols, by stream ID for
	// parallel protocols.
	fifo   []*openRequest
	byID   map[uint64]*openRequest
	lastRx *contState // ingress continuation
	lastTx *contState // egress continuation
}

type contState struct {
	remaining int
	req       *openRequest // message being extended (nil for responses)
	end       *time.Time
}

// arenaBlock is how many spans / open requests each arena block holds.
const arenaBlock = 256

// spanArena hands out spans from block allocations: one make() zeroes and
// allocates 256 spans at a time, amortizing the allocator and memclr work
// that otherwise dominates the per-message profile. Spans escape to the
// Emit callback and are garbage-collected per block once every span in it
// is dropped — fine for the agent, which encodes and releases spans
// promptly.
type spanArena struct{ buf []trace.Span }

func (a *spanArena) next() *trace.Span {
	if len(a.buf) == 0 {
		a.buf = make([]trace.Span, arenaBlock)
	}
	sp := &a.buf[0]
	a.buf = a.buf[1:]
	return sp
}

// reqArena is the same block allocator for open requests.
type reqArena struct{ buf []openRequest }

func (a *reqArena) next() *openRequest {
	if len(a.buf) == 0 {
		a.buf = make([]openRequest, arenaBlock)
	}
	r := &a.buf[0]
	a.buf = a.buf[1:]
	return r
}

type openRequest struct {
	ev       MessageEvent
	msg      protocols.Message
	systrace trace.SysTraceID
	pseudo   uint64
	slot     int64
	done     bool // matched or expired; lazily removed from queues
}

// NewSessionizer creates a sessionizer; tracer may be nil for packet
// streams, extra holds user-supplied protocol codecs (paper §3.3.1:
// "optional user-supplied protocol specifications"), registered through
// the codec table's Register API ahead of the builtins. When extra is
// empty the shared builtin table is used directly.
func NewSessionizer(ids *trace.IDAllocator, tracer *SysTracer, extra []protocols.Codec, emit func(*trace.Span)) *Sessionizer {
	table := protocols.Default()
	if len(extra) > 0 {
		table = protocols.NewTable()
		for _, c := range extra {
			table.Register(c)
		}
	}
	return &Sessionizer{
		ids:      ids,
		tracer:   tracer,
		table:    table,
		flows:    make(map[flowKey]*flowState),
		window:   NewTimeWindow(WindowDuration),
		Emit:     emit,
		Inferred: make(map[trace.L7Proto]int),
	}
}

// SetWindow replaces the session-aggregation slot duration. Call it before
// feeding any events; existing open requests are not re-slotted.
func (sz *Sessionizer) SetWindow(slotDur time.Duration) {
	sz.window = NewTimeWindow(slotDur)
}

// instrument registers this sessionizer's self-metrics under its capture
// point tag ("syscall" or "packet"): protocol-inference hits, misses, and
// give-ups, fast-path/slow-path message counts, parse errors, orphan
// responses, window occupancy, and evictions.
func (sz *Sessionizer) instrument(mon *selfmon.Registry, capture string) {
	sz.mon = mon
	sz.capture = capture
	tag := selfmon.Tag{K: "capture", V: capture}
	sz.mMiss = mon.Counter("deepflow_agent_inference_misses", tag)
	sz.mOrphans = mon.Counter("deepflow_agent_orphan_responses", tag)
	sz.mEvict = mon.Counter("deepflow_agent_window_evictions", tag)
	sz.mGiveups = mon.Counter("deepflow_agent_inference_giveups", tag)
	sz.mFastHits = mon.Counter("deepflow_agent_fastpath_hits", tag)
	sz.mSlowMsgs = mon.Counter("deepflow_agent_slowpath_messages", tag)
	mon.GaugeFunc("deepflow_agent_window_occupancy",
		func() float64 { return float64(sz.window.Len()) }, tag)
	mon.GaugeFunc("deepflow_agent_flow_messages",
		func() float64 { return float64(sz.FlowMsgs) }, tag)
	mon.GaugeFunc("deepflow_agent_flow_bytes",
		func() float64 { return float64(sz.FlowBytes) }, tag)
}

func (sz *Sessionizer) key(ev *MessageEvent) flowKey {
	if ev.Socket != 0 {
		return flowKey{sock: ev.Socket, uprobe: ev.Source == trace.SourceUProbe}
	}
	return flowKey{tuple: ev.Tuple.Canonical()}
}

// Feed processes one message event, possibly emitting a completed span.
//
// The cheap per-message work — flow-state fetch, flow-metric updates,
// continuation accounting — runs unconditionally. Established flows whose
// codec declares a fast-path header parser then try ParseHeader: a
// response resolves entirely on the fast path (status and stream ID are
// all session matching needs), while requests and anything ParseHeader
// rejects fall through to the slow path's full Parse. The fast and slow
// paths produce byte-identical spans (pinned by the agent's equivalence
// test): codecs whose responses can carry association headers opt out of
// fast-path eligibility via their declared traits.
func (sz *Sessionizer) Feed(ev MessageEvent) {
	k := sz.key(&ev)
	fs := sz.flows[k]
	if fs == nil {
		fs = &flowState{byID: make(map[uint64]*openRequest)}
		sz.flows[k] = fs
	}

	// Flow metrics update on every path, including unparsable flows.
	fs.msgs++
	fs.bytes += uint64(ev.DataLen)
	sz.FlowMsgs++
	sz.FlowBytes += uint64(ev.DataLen)

	// Continuation syscalls of a long message extend it rather than
	// starting a new one (paper §3.3.1: "we only process the first system
	// call for a message").
	cont := fs.lastTx
	if ev.Dir == trace.DirIngress {
		cont = fs.lastRx
	}
	if cont != nil && cont.remaining > 0 {
		cont.remaining -= ev.DataLen
		if cont.end != nil {
			*cont.end = ev.End
		}
		return
	}

	// One-shot protocol inference per flow, retried until first success
	// within a capped budget: a flow that matched no codec for
	// InferMaxTries messages will not start matching later, so the
	// all-codec probe is retired and only the per-message accounting
	// remains.
	if fs.codec == nil {
		if fs.gaveUp {
			sz.Unparsable++
			if sz.mMiss != nil {
				sz.mMiss.Inc()
			}
			return
		}
		entry := sz.table.InferEntry(ev.Payload)
		if entry == nil {
			fs.inferTry++
			sz.Unparsable++
			if sz.mMiss != nil {
				sz.mMiss.Inc()
			}
			if fs.inferTry >= InferMaxTries {
				fs.gaveUp = true
				sz.InferGiveups++
				if sz.mGiveups != nil {
					sz.mGiveups.Inc()
				}
			}
			return
		}
		fs.codec = entry.Codec
		fs.parallel = entry.Traits.Parallel
		fs.header = entry.Header
		fs.isTLS = entry.Codec.Proto() == trace.L7TLS
		sz.Inferred[fs.codec.Proto()]++
		if sz.mon != nil {
			sz.mon.Counter("deepflow_agent_inference_hits",
				selfmon.Tag{K: "capture", V: sz.capture},
				selfmon.Tag{K: "proto", V: fs.codec.Proto().String()}).Inc()
		}
	}
	// Encrypted flows carry no parseable syscall payloads; their spans
	// come from the uprobe plaintext stream instead.
	if fs.isTLS {
		return
	}

	// Fast path: lightweight header parse resolves responses without
	// building resource strings or header maps. Requests are session
	// boundaries and always take the slow path below; since a flow's
	// request direction is fixed, the probe is skipped for messages
	// positively known to travel with the requests; flows whose events
	// carry no direction probe every message.
	if fs.header != nil && !sz.DisableFastPath && !(fs.reqDir != 0 && ev.Dir == fs.reqDir) {
		if hi, err := fs.header.ParseHeader(ev.Payload); err == nil && hi.Type == trace.MsgResponse {
			sz.FastPathHits++
			if sz.mFastHits != nil {
				sz.mFastHits.Inc()
			}
			sz.feedResponse(fs, ev, protocols.Message{
				Proto:    fs.codec.Proto(),
				Type:     trace.MsgResponse,
				Code:     hi.Code,
				Status:   hi.Status,
				StreamID: hi.StreamID,
				TotalLen: hi.TotalLen,
			})
			return
		}
	}

	// Slow path: full parse.
	sz.SlowPathMsgs++
	if sz.mSlowMsgs != nil {
		sz.mSlowMsgs.Inc()
	}
	msg, err := fs.codec.Parse(ev.Payload)
	if err != nil {
		sz.Unparsable++
		if sz.mon != nil {
			sz.mon.Counter("deepflow_agent_parse_errors",
				selfmon.Tag{K: "capture", V: sz.capture},
				selfmon.Tag{K: "proto", V: fs.codec.Proto().String()}).Inc()
		}
		return
	}

	switch msg.Type {
	case trace.MsgRequest:
		sz.feedRequest(fs, ev, msg)
	case trace.MsgResponse:
		sz.feedResponse(fs, ev, msg)
	}
}

func (sz *Sessionizer) feedRequest(fs *flowState, ev MessageEvent, msg protocols.Message) {
	fs.reqDir = ev.Dir
	req := sz.reqs.next()
	req.ev, req.msg, req.slot = ev, msg, sz.slotOf(ev.Start)
	if sz.tracer != nil && !ev.NoThreadContext {
		req.systrace = sz.tracer.Observe(ev.PID, ev.TID, ev.Coro, ev.Socket, ev.Dir, msg.Type)
		req.pseudo = sz.tracer.PseudoThread(ev.Coro)
	}
	if msg.TotalLen > ev.DataLen {
		cs := &contState{remaining: msg.TotalLen - ev.DataLen, req: req, end: &req.ev.End}
		sz.setCont(fs, ev.Dir, cs)
	}
	if fs.parallel {
		fs.byID[msg.StreamID] = req
	} else {
		fs.fifo = append(fs.fifo, req)
	}
	sz.window.Add(req)
}

func (sz *Sessionizer) setCont(fs *flowState, dir trace.Direction, cs *contState) {
	if dir == trace.DirIngress {
		fs.lastRx = cs
	} else {
		fs.lastTx = cs
	}
}

func (sz *Sessionizer) feedResponse(fs *flowState, ev MessageEvent, msg protocols.Message) {
	if sz.tracer != nil && !ev.NoThreadContext {
		sz.tracer.Observe(ev.PID, ev.TID, ev.Coro, ev.Socket, ev.Dir, msg.Type)
	}
	var req *openRequest
	if fs.parallel {
		req = fs.byID[msg.StreamID]
		delete(fs.byID, msg.StreamID)
		if req != nil && req.done {
			req = nil // expired before the response arrived
		}
	} else {
		// Pop the oldest open request, skipping any already expired.
		for len(fs.fifo) > 0 {
			cand := fs.fifo[0]
			fs.fifo = fs.fifo[1:]
			if !cand.done {
				req = cand
				break
			}
		}
	}
	if msg.TotalLen > ev.DataLen {
		sz.setCont(fs, ev.Dir, &contState{remaining: msg.TotalLen - ev.DataLen})
	}
	if req == nil {
		sz.OrphanResps++
		if sz.mOrphans != nil {
			sz.mOrphans.Inc()
		}
		sz.emitSpan(nil, &ev, &msg)
		return
	}
	// Aggregation only within the same or adjacent window slot (paper
	// §3.3.1); responses beyond that mean the request already flushed.
	if !sz.window.Adjacent(req.slot, sz.slotOf(ev.Start)) {
		sz.OrphanResps++
		if sz.mOrphans != nil {
			sz.mOrphans.Inc()
		}
		sz.markTimeout(req)
		sz.emitSpan(nil, &ev, &msg)
		return
	}
	req.done = true
	sz.emitSpan(req, &ev, &msg)
}

func (sz *Sessionizer) slotOf(t time.Time) int64 { return sz.window.SlotOf(t) }

// emitSpan builds one span from a (request, response) session. Either side
// may be missing: a nil req yields an orphan-response span, a nil resp
// (via emitTimeout) a timeout span.
func (sz *Sessionizer) emitSpan(req *openRequest, respEv *MessageEvent, respMsg *protocols.Message) {
	sp := sz.spans.next()
	sp.ID = sz.ids.NextSpanID()

	if req != nil {
		ev, msg := &req.ev, &req.msg
		sp.Source = ev.Source
		sp.TapSide = ev.TapSide
		sp.HostName = ev.Host
		sp.Socket = ev.Socket
		sp.Flow = requestFlow(ev)
		sp.L7 = msg.Proto
		sp.StartTime = ev.Start
		sp.ReqTCPSeq = ev.Seq
		sp.PID, sp.TID, sp.CoroutineID, sp.ProcessName = ev.PID, ev.TID, ev.Coro, ev.ProcName
		sp.SysTraceID = req.systrace
		sp.PseudoThreadID = req.pseudo
		sp.RequestType = msg.Method
		sp.RequestResource = msg.Resource
		sp.XRequestID = msg.Header("x-request-id")
		if tp := msg.Header("traceparent"); tp != "" {
			tid, spanID := parseTraceparent(tp)
			sp.TraceID = tid
			sp.ParentSpanRef = spanID
		} else if b3 := msg.Header("b3"); b3 != "" {
			tid, spanID := parseB3(b3)
			sp.TraceID = tid
			sp.ParentSpanRef = spanID
		}
	}
	if respEv != nil {
		if req == nil {
			ev := respEv
			sp.Source = ev.Source
			sp.TapSide = ev.TapSide
			sp.HostName = ev.Host
			sp.Socket = ev.Socket
			sp.Flow = ev.Tuple.Reverse() // orient request-ward
			sp.L7 = respMsg.Proto
			sp.StartTime = ev.Start
			sp.PID, sp.TID, sp.CoroutineID, sp.ProcessName = ev.PID, ev.TID, ev.Coro, ev.ProcName
		}
		sp.EndTime = respEv.End
		sp.RespTCPSeq = respEv.Seq
		sp.ResponseCode = respMsg.Code
		sp.ResponseStatus = respMsg.Status
		// Proxies add X-Request-ID on the response path too; a session
		// whose request had none can still be associated through it.
		if sp.XRequestID == "" {
			sp.XRequestID = respMsg.Header("x-request-id")
		}
	}
	if sp.EndTime.IsZero() {
		sp.EndTime = sp.StartTime
	}
	sz.Emit(sp)
}

// requestFlow orients the span's flow client→server: the request travels
// toward the server, so the request tuple already points that way.
func requestFlow(ev *MessageEvent) trace.FiveTuple { return ev.Tuple }

// Flush emits timeout spans for requests older than two window slots by
// popping expired slots from the time-window array. Call it periodically
// and at shutdown.
func (sz *Sessionizer) Flush(now time.Time) {
	for _, req := range sz.window.Expire(now) {
		sz.markTimeout(req)
	}
}

func (sz *Sessionizer) markTimeout(req *openRequest) {
	req.done = true
	if sz.mEvict != nil {
		sz.mEvict.Inc()
	}
	old := sz.Emit
	sz.Emit = func(s *trace.Span) {
		s.ResponseStatus = "timeout"
		old(s)
	}
	sz.emitSpan(req, nil, nil)
	sz.Emit = old
}

// FlushAll emits timeout spans for every open request regardless of age.
func (sz *Sessionizer) FlushAll() {
	for _, req := range sz.window.Drain() {
		sz.markTimeout(req)
	}
	for _, fs := range sz.flows {
		fs.fifo = nil
		for id := range fs.byID {
			delete(fs.byID, id)
		}
	}
}

// parseTraceparent extracts (trace id, span id) from a W3C traceparent
// header: "00-<32 hex>-<16 hex>-<flags>".
func parseTraceparent(v string) (traceID, spanID string) {
	parts := splitDash(v)
	if len(parts) >= 3 {
		return parts[1], parts[2]
	}
	return "", ""
}

// parseB3 extracts (trace id, span id) from a single-header B3 value:
// "<traceid>-<spanid>-<sampled>".
func parseB3(v string) (traceID, spanID string) {
	parts := splitDash(v)
	if len(parts) >= 2 {
		return parts[0], parts[1]
	}
	return "", ""
}

func splitDash(v string) []string {
	var out []string
	start := 0
	for i := 0; i < len(v); i++ {
		if v[i] == '-' {
			out = append(out, v[start:i])
			start = i + 1
		}
	}
	return append(out, v[start:])
}

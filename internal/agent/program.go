// Package agent implements the DeepFlow Agent (paper Fig. 4): it attaches
// verified ebpfvm programs to the simulated kernel's syscall hooks, drains
// the perf buffer, associates enter/exit events, infers protocols, builds
// message data and sessions (spans), assigns systrace IDs, captures network
// spans and metrics from NIC taps, integrates third-party spans, and ships
// everything to the DeepFlow server.
package agent

import (
	"encoding/binary"
	"fmt"

	"deepflow/internal/ebpfvm"
	"deepflow/internal/simkernel"
)

// Hook program design (paper §3.3.1): the enter program stashes the enter
// timestamp in a hash map keyed by (pid,tid); the exit program joins it,
// emits the full context to the perf buffer, and clears the map entry. The
// kernel can only process one instrumented syscall per (pid,tid) at a time,
// which is exactly what makes this join correct.

// pidTgidKeySize is the map key size (pid<<32|tid as u64).
const pidTgidKeySize = 8

// enterValSize is the stored enter record: enter timestamp (u64).
const enterValSize = 8

// flowStatValSize is the per-socket in-kernel statistics record:
// packets (u64) + bytes (u64) + payload hint (u64, OR-accumulated
// first/last payload bytes — a cheap in-kernel protocol-inference
// signature, §3.2.2).
const flowStatValSize = 24

// Programs bundles the loaded tracing-plane resources for one kernel.
type Programs struct {
	VM        *ebpfvm.Machine
	Enter     *ebpfvm.Program
	Exit      *ebpfvm.Program
	Uprobe    *ebpfvm.Program
	FlowStats *ebpfvm.Program
	Empty     *ebpfvm.Program
	MapFD     int64
	PerfFD    int64
	StatsFD   int64
	Perf      *ebpfvm.PerfBuffer
	InFlight  *ebpfvm.HashMap
	Stats     *ebpfvm.HashMap
}

// BuildPrograms assembles and verifies the agent's hook programs against a
// fresh VM. PerfCapacity bounds the perf ring (records are dropped, not
// blocked, on overflow).
func BuildPrograms(perfCapacity int) (*Programs, error) {
	ps, err := AssemblePrograms(perfCapacity)
	if err != nil {
		return nil, err
	}
	env := ps.VerifyEnv()
	for _, p := range ps.All() {
		if err := ebpfvm.Verify(p, env); err != nil {
			return nil, fmt.Errorf("agent: %w", err)
		}
	}
	return ps, nil
}

// All returns the tracing-plane hook programs in a stable order, for
// verification, selfmon export, and the dfvet static checker.
func (p *Programs) All() []*ebpfvm.Program {
	return []*ebpfvm.Program{p.Enter, p.Exit, p.Uprobe, p.FlowStats, p.Empty}
}

// VerifyEnv returns the verification environment the programs run under.
func (p *Programs) VerifyEnv() ebpfvm.VerifyEnv {
	return ebpfvm.VerifyEnv{CtxSize: simkernel.CtxSize, Resolve: p.VM.Resolve}
}

// AssemblePrograms builds the hook programs and their maps without
// verifying them — the assembly half of BuildPrograms, split out so dfvet
// can run the verifier itself and report per-program analysis logs.
func AssemblePrograms(perfCapacity int) (*Programs, error) {
	vm := ebpfvm.NewMachine()
	inflight := ebpfvm.NewHashMap("df_inflight", pidTgidKeySize, enterValSize, 65536)
	mapFD := vm.RegisterMap(inflight)
	perf := ebpfvm.NewPerfBuffer("df_events", perfCapacity)
	perfFD := vm.RegisterPerf(perf)

	// Enter: inflight[pid_tgid] = ktime().
	enter := ebpfvm.NewAsm("df_sys_enter").
		Call(ebpfvm.HelperGetPidTgid).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -8, ebpfvm.R0). // key at fp-8
		Call(ebpfvm.HelperKtimeNS).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -16, ebpfvm.R0). // value at fp-16
		MovImm(ebpfvm.R1, mapFD).
		MovReg(ebpfvm.R2, ebpfvm.R10).
		AddImm(ebpfvm.R2, -8).
		MovReg(ebpfvm.R3, ebpfvm.R10).
		AddImm(ebpfvm.R3, -16).
		Call(ebpfvm.HelperMapUpdate).
		MovImm(ebpfvm.R0, 0).
		Exit().
		MustBuild()

	// Exit: join with the enter record; emit the exit context (which
	// carries enter and exit timestamps) to the perf buffer; clear the
	// in-flight entry. If there is no enter record (hook attached
	// mid-syscall) the event is emitted anyway — user space tolerates it.
	exit := ebpfvm.NewAsm("df_sys_exit").
		MovReg(ebpfvm.R6, ebpfvm.R1). // save ctx
		Call(ebpfvm.HelperGetPidTgid).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -8, ebpfvm.R0).
		MovImm(ebpfvm.R1, mapFD).
		MovReg(ebpfvm.R2, ebpfvm.R10).
		AddImm(ebpfvm.R2, -8).
		Call(ebpfvm.HelperMapLookup).
		JeqImm(ebpfvm.R0, 0, "emit").
		MovImm(ebpfvm.R1, mapFD).
		MovReg(ebpfvm.R2, ebpfvm.R10).
		AddImm(ebpfvm.R2, -8).
		Call(ebpfvm.HelperMapDelete).
		Label("emit").
		MovImm(ebpfvm.R1, perfFD).
		MovReg(ebpfvm.R2, ebpfvm.R6).
		MovImm(ebpfvm.R3, simkernel.CtxSize).
		Call(ebpfvm.HelperPerfOutput).
		MovImm(ebpfvm.R0, 0).
		Exit().
		MustBuild()

	// Uprobe/uretprobe extension: emit the user-space context directly
	// (used for TLS plaintext capture, §3.2.1).
	uprobe := ebpfvm.NewAsm("df_uprobe").
		MovReg(ebpfvm.R6, ebpfvm.R1).
		MovImm(ebpfvm.R1, perfFD).
		MovReg(ebpfvm.R2, ebpfvm.R6).
		MovImm(ebpfvm.R3, simkernel.CtxSize).
		Call(ebpfvm.HelperPerfOutput).
		MovImm(ebpfvm.R0, 0).
		Exit().
		MustBuild()

	// Flow statistics: aggregate per-socket packet and byte counters
	// entirely in kernel space — DeepFlow's low-cost network metrics
	// (§1: "captures network metrics in a low-cost way"). The agent
	// scrapes and clears the map at flush time instead of receiving one
	// event per packet.
	stats := ebpfvm.NewHashMap("df_flow_stats", 8, flowStatValSize, 65536)
	statsFD := vm.RegisterMap(stats)
	flow := ebpfvm.NewAsm("df_flow_stats").
		// Skip failed syscalls (DataLen sign bit set).
		Ldx(ebpfvm.SizeW, ebpfvm.R7, ebpfvm.R1, simkernel.CtxOffDataLen).
		JsetImm(ebpfvm.R7, int64(1)<<31, "skip").
		// Payload hint: OR of the payload's last byte, read at the
		// runtime-variable offset ctx[CtxOffPayload + paylen - 1]. The clamp
		// below hands the verifier the interval [1,PayloadPrefixLen] it
		// needs to prove the access in bounds — before range analysis this
		// read needed a PayloadPrefixLen-way unrolled branch chain.
		Ldx(ebpfvm.SizeH, ebpfvm.R8, ebpfvm.R1, simkernel.CtxOffPayLen). // r8 = paylen, in [0,65535]
		JeqImm(ebpfvm.R8, 0, "nopay").
		JgtImm(ebpfvm.R8, simkernel.PayloadPrefixLen, "nopay"). // fallthrough: r8 in [1,192]
		MovReg(ebpfvm.R9, ebpfvm.R1).
		AddReg(ebpfvm.R9, ebpfvm.R8). // ctx + paylen: range-bounded pointer
		Ldx(ebpfvm.SizeB, ebpfvm.R8, ebpfvm.R9, simkernel.CtxOffPayload-1).
		Ja("key").
		Label("nopay").
		MovImm(ebpfvm.R8, 0).
		Label("key").
		// key = socket id at fp-8.
		Ldx(ebpfvm.SizeDW, ebpfvm.R6, ebpfvm.R1, simkernel.CtxOffSocket).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -8, ebpfvm.R6).
		MovImm(ebpfvm.R1, statsFD).
		MovReg(ebpfvm.R2, ebpfvm.R10).
		AddImm(ebpfvm.R2, -8).
		Call(ebpfvm.HelperMapLookup).
		JeqImm(ebpfvm.R0, 0, "init").
		// Hit: increment counters in place in the map value.
		Ldx(ebpfvm.SizeDW, ebpfvm.R2, ebpfvm.R0, 0).
		AddImm(ebpfvm.R2, 1).
		Stx(ebpfvm.SizeDW, ebpfvm.R0, 0, ebpfvm.R2).
		Ldx(ebpfvm.SizeDW, ebpfvm.R2, ebpfvm.R0, 8).
		AddReg(ebpfvm.R2, ebpfvm.R7).
		Stx(ebpfvm.SizeDW, ebpfvm.R0, 8, ebpfvm.R2).
		Ldx(ebpfvm.SizeDW, ebpfvm.R2, ebpfvm.R0, 16).
		OrReg(ebpfvm.R2, ebpfvm.R8).
		Stx(ebpfvm.SizeDW, ebpfvm.R0, 16, ebpfvm.R2).
		MovImm(ebpfvm.R0, 0).
		Exit().
		Label("init").
		// Miss: write the initial {1, datalen, hint} record.
		MovImm(ebpfvm.R2, 1).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -32, ebpfvm.R2).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -24, ebpfvm.R7).
		Stx(ebpfvm.SizeDW, ebpfvm.R10, -16, ebpfvm.R8).
		MovImm(ebpfvm.R1, statsFD).
		MovReg(ebpfvm.R2, ebpfvm.R10).
		AddImm(ebpfvm.R2, -8).
		MovReg(ebpfvm.R3, ebpfvm.R10).
		AddImm(ebpfvm.R3, -32).
		Call(ebpfvm.HelperMapUpdate).
		Label("skip").
		MovImm(ebpfvm.R0, 0).
		Exit().
		MustBuild()

	// Empty program: the theoretical-minimum overhead baseline used by the
	// Fig. 13 experiment.
	empty := ebpfvm.NewAsm("df_empty").
		MovImm(ebpfvm.R0, 0).
		Exit().
		MustBuild()

	return &Programs{
		VM: vm, Enter: enter, Exit: exit, Uprobe: uprobe, FlowStats: flow, Empty: empty,
		MapFD: mapFD, PerfFD: perfFD, StatsFD: statsFD,
		Perf: perf, InFlight: inflight, Stats: stats,
	}, nil
}

// SocketStat is one scraped in-kernel flow-statistics record.
type SocketStat struct {
	Packets uint64
	Bytes   uint64
	// PayloadHint is the OR of observed last-payload bytes on this socket,
	// computed in kernel space via a range-bounded ctx access — a cheap
	// protocol-inference signature (e.g. HTTP/1 responses end in '\n').
	PayloadHint uint64
}

// ScrapeFlowStats drains the in-kernel statistics map, returning the
// per-socket counters accumulated since the previous scrape.
func (p *Programs) ScrapeFlowStats() map[uint64]SocketStat {
	out := make(map[uint64]SocketStat, p.Stats.Len())
	p.Stats.Iterate(func(key string, val []byte) bool {
		if len(key) != 8 || len(val) != flowStatValSize {
			return true
		}
		le := binary.LittleEndian
		out[le.Uint64([]byte(key))] = SocketStat{
			Packets:     le.Uint64(val[0:]),
			Bytes:       le.Uint64(val[8:]),
			PayloadHint: le.Uint64(val[16:]),
		}
		return true
	})
	p.Stats.Clear()
	return out
}

// RunHook marshals ctx and executes the program for the hook's task, the
// kernel→BPF boundary crossing. The scratch buffer avoids per-event
// allocation; callers may pass nil.
func (p *Programs) RunHook(prog *ebpfvm.Program, ctx *simkernel.HookContext, scratch []byte) error {
	if len(scratch) < simkernel.CtxSize {
		scratch = make([]byte, simkernel.CtxSize)
	}
	buf := ctx.Marshal(scratch)
	_, err := p.VM.Run(prog, buf, ebpfvm.Task{PID: ctx.PID, TID: ctx.TID})
	return err
}

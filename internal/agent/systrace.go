package agent

import (
	"deepflow/internal/trace"
)

// SysTracer implements the intra-component causal association of paper
// §3.3.2 (Fig. 7): consecutive messages on the same execution context
// (thread or pseudo-thread) that cross sockets share a systrace_id. The key
// insight encoded here is that "computing does not yield to scheduling,
// whereas network communication does": within one thread, everything
// between receiving a request and sending its response belongs to the same
// causal chain, and a new incoming request partitions the chain (thread
// reuse, Fig. 7b).
type SysTracer struct {
	ids    *trace.IDAllocator
	states map[threadKey]*threadState
	// coroutine parent tracking (pseudo-threads for Go-style runtimes)
	coroRoot map[uint64]uint64
}

type threadKey struct {
	pid    uint32
	thread uint64 // tid, or root coroutine for coroutine runtimes
	coro   bool
}

type threadState struct {
	current     trace.SysTraceID
	rootSocket  trace.SocketID // socket of the ingress request that opened the chain
	serverChain bool           // chain opened by an ingress request
	open        bool

	// Previous message, for the paper's join rule: "we label two
	// consecutive messages of different types and from different sockets
	// with the same systrace_id".
	prevDir   trace.Direction
	prevSock  trace.SocketID
	prevValid bool
}

// NewSysTracer creates a tracer using ids for unique systrace IDs.
func NewSysTracer(ids *trace.IDAllocator) *SysTracer {
	return &SysTracer{
		ids:      ids,
		states:   make(map[threadKey]*threadState),
		coroRoot: make(map[uint64]uint64),
	}
}

// ObserveCoroutine records a coroutine creation so descendants map to the
// same pseudo-thread (paper §3.3.1: "parent-child coroutine relationship in
// a pseudo-thread structure").
func (st *SysTracer) ObserveCoroutine(parent, child uint64) {
	if parent == 0 {
		st.coroRoot[child] = child
		return
	}
	root, ok := st.coroRoot[parent]
	if !ok {
		root = parent
		st.coroRoot[parent] = parent
	}
	st.coroRoot[child] = root
}

// PseudoThread returns the pseudo-thread identifier for a context: the root
// coroutine when coroutines are in play, zero otherwise.
func (st *SysTracer) PseudoThread(coro uint64) uint64 {
	if coro == 0 {
		return 0
	}
	if root, ok := st.coroRoot[coro]; ok {
		return root
	}
	return coro
}

func (st *SysTracer) key(pid, tid uint32, coro uint64) threadKey {
	if coro != 0 {
		return threadKey{pid: pid, thread: st.PseudoThread(coro), coro: true}
	}
	return threadKey{pid: pid, thread: uint64(tid)}
}

// Observe assigns a systrace ID to one classified message. dir and typ are
// the message's direction and inferred type; sock identifies its socket.
func (st *SysTracer) Observe(pid, tid uint32, coro uint64, sock trace.SocketID, dir trace.Direction, typ trace.MessageType) trace.SysTraceID {
	k := st.key(pid, tid, coro)
	s := st.states[k]
	if s == nil {
		s = &threadState{}
		st.states[k] = s
	}

	defer func() {
		s.prevDir, s.prevSock, s.prevValid = dir, sock, true
	}()

	switch {
	case dir == trace.DirIngress && typ == trace.MsgRequest:
		// A new incoming request always opens a fresh chain (thread-reuse
		// partition, Fig. 7b) rooted at its socket.
		s.current = st.ids.NextSysTraceID()
		s.rootSocket = sock
		s.serverChain = true
		s.open = true

	case dir == trace.DirEgress && typ == trace.MsgRequest:
		// Outgoing call: joins the open chain when the thread is serving
		// a request (blocking workers cannot interleave), or — for pure
		// client chains — only under the paper's strict rule: the
		// previous message had a different type and a different socket.
		// Without the strict rule an event-loop thread multiplexing many
		// requests would merge them all into one chain.
		join := s.open && (s.serverChain ||
			(s.prevValid && s.prevDir != dir && s.prevSock != sock))
		if !join {
			s.current = st.ids.NextSysTraceID()
			s.rootSocket = 0
			s.serverChain = false
			s.open = true
		}

	case dir == trace.DirIngress && typ == trace.MsgResponse:
		// Response to an outgoing call: continues the chain. For a pure
		// client chain (not rooted at a server request) the response
		// completes the work unit: the next call on this thread is a new
		// chain — this is the time-sequence partition of Fig. 7(b) seen
		// from the client side.
		if !s.open {
			s.current = st.ids.NextSysTraceID()
		}
		id := s.current
		if s.open && !s.serverChain {
			s.open = false
		}
		return id

	case dir == trace.DirEgress && typ == trace.MsgResponse:
		// Replying: continues the chain; replying on the root socket
		// completes the server request and closes the chain.
		if !s.open {
			s.current = st.ids.NextSysTraceID()
		}
		id := s.current
		if s.open && sock == s.rootSocket {
			s.open = false
		}
		return id
	}
	return s.current
}

package transport

import (
	"sync"
	"testing"
	"time"
)

// TestQueueBackpressure: a full queue makes Push wait (accounted, not
// dropped) until a consumer frees space.
func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	if !q.Push([]byte{1}) || !q.Push([]byte{2}) {
		t.Fatal("pushes into empty queue failed")
	}
	done := make(chan bool)
	go func() { done <- q.Push([]byte{3}) }()
	select {
	case <-done:
		t.Fatal("push into full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if ok := <-done; !ok {
		t.Fatal("blocked push failed after space freed")
	}
	if q.Waits() != 1 || q.Dropped() != 0 {
		t.Fatalf("waits=%d dropped=%d, want 1/0", q.Waits(), q.Dropped())
	}
	if q.WaitTime() <= 0 {
		t.Fatal("backpressure wait not accounted")
	}
}

// TestQueueCountedDrops: TryPush on a full queue and Push on a closed
// queue both fail visibly through the Dropped counter.
func TestQueueCountedDrops(t *testing.T) {
	q := NewQueue(1)
	q.Push([]byte{1})
	if q.TryPush([]byte{2}) {
		t.Fatal("TryPush into full queue succeeded")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped())
	}
	q.Close()
	if q.Push([]byte{3}) {
		t.Fatal("push into closed queue succeeded")
	}
	if q.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", q.Dropped())
	}
	// The backlog drains after close, then Pop reports closure.
	if v, ok := q.Pop(); !ok || len(v) != 1 {
		t.Fatalf("pop after close = %v/%v, want backlog entry", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on drained closed queue succeeded")
	}
}

// TestQueueConcurrent: many producers and consumers under race detection;
// everything pushed is popped exactly once.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue(8)
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push([]byte{byte(i)})
			}
		}()
	}
	var consumed sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for c := 0; c < 3; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				mu.Lock()
				total++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	consumed.Wait()
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
	if q.Enqueued() != uint64(total) || q.Dequeued() != uint64(total) || q.Dropped() != 0 {
		t.Fatalf("counters enq=%d deq=%d drop=%d", q.Enqueued(), q.Dequeued(), q.Dropped())
	}
}

package transport

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
)

func randString(rng *rand.Rand, max int) string {
	n := rng.Intn(max + 1)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_./:|=\\"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

func randSpan(rng *rand.Rand, i int) *trace.Span {
	start := time.Unix(0, rng.Int63n(1e15)).UTC()
	sp := &trace.Span{
		ID:              trace.SpanID(rng.Uint64()),
		SysTraceID:      trace.SysTraceID(rng.Uint64()),
		PseudoThreadID:  rng.Uint64(),
		XRequestID:      randString(rng, 24),
		ReqTCPSeq:       rng.Uint32(),
		RespTCPSeq:      rng.Uint32(),
		TraceID:         randString(rng, 32),
		SpanRef:         randString(rng, 16),
		ParentSpanRef:   randString(rng, 16),
		PID:             rng.Uint32(),
		TID:             rng.Uint32(),
		CoroutineID:     rng.Uint64(),
		ProcessName:     randString(rng, 12),
		Socket:          trace.SocketID(rng.Uint64()),
		Flow:            trace.FiveTuple{SrcIP: trace.IP(rng.Uint32()), DstIP: trace.IP(rng.Uint32()), SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()), Proto: trace.L4TCP},
		L7:              trace.L7Proto(rng.Intn(10)),
		Source:          trace.Source(1 + rng.Intn(4)),
		TapSide:         trace.TapSide(rng.Intn(9)),
		HostName:        randString(rng, 20),
		StartTime:       start,
		EndTime:         start.Add(time.Duration(rng.Int63n(1e9))),
		RequestType:     randString(rng, 8),
		RequestResource: randString(rng, 64),
		ResponseCode:    int32(rng.Intn(600) - 100),
		ResponseStatus:  []string{"ok", "error", "timeout", ""}[rng.Intn(4)],
		Resource: trace.ResourceTags{
			VPCID: int32(rng.Intn(1 << 20)), IP: trace.IP(rng.Uint32()),
			PodID: int32(rng.Intn(1 << 16)), NodeID: int32(rng.Intn(1 << 10)),
			ServiceID: int32(rng.Intn(1 << 12)), NSID: int32(rng.Intn(64)),
			RegionID: int32(rng.Intn(8)), AZID: int32(rng.Intn(16)),
		},
		Net: trace.NetMetrics{
			Retransmissions: rng.Uint32(), Resets: rng.Uint32(), ZeroWindows: rng.Uint32(),
			RTT: time.Duration(rng.Int63n(1e9)), BytesSent: rng.Uint64(), BytesReceived: rng.Uint64(),
			ARPRequests: rng.Uint32(),
		},
		ParentID: trace.SpanID(rng.Uint64()),
	}
	if rng.Intn(3) == 0 { // sometimes carry custom labels, sometimes huge ones
		sp.Custom = map[string]string{}
		for j := 0; j < rng.Intn(5); j++ {
			sp.Custom[fmt.Sprintf("k%d", j)] = randString(rng, 16)
		}
		if i%17 == 0 { // max-size tag values
			sp.Custom["max"] = strings.Repeat("x", 4096)
		}
		if len(sp.Custom) == 0 {
			sp.Custom = nil
		}
	}
	return sp
}

func randBatch(rng *rand.Rand, i int) *Batch {
	b := &Batch{Host: randString(rng, 12), Seq: rng.Uint64()}
	for j := 0; j < rng.Intn(8); j++ {
		b.Spans = append(b.Spans, randSpan(rng, i*10+j))
	}
	for j := 0; j < rng.Intn(4); j++ {
		b.Flows = append(b.Flows, FlowSample{
			TS:   time.Unix(0, rng.Int63n(1e15)).UTC(),
			Host: randString(rng, 10), NIC: randString(rng, 6),
			Tuple:         trace.FiveTuple{SrcIP: trace.IP(rng.Uint32()), DstIP: trace.IP(rng.Uint32()), SrcPort: uint16(rng.Uint32()), DstPort: 80, Proto: trace.L4UDP},
			Delta:         trace.NetMetrics{Retransmissions: rng.Uint32(), RTT: time.Duration(rng.Int63n(1e8)), BytesSent: rng.Uint64()},
			KernelPackets: rng.Uint64(), KernelBytes: rng.Uint64(),
		})
	}
	for j := 0; j < rng.Intn(4); j++ {
		var stack []string
		for k := 0; k < rng.Intn(40); k++ {
			stack = append(stack, randString(rng, 24))
		}
		b.Profiles = append(b.Profiles, profiling.Sample{
			Host: randString(rng, 10), PID: rng.Uint32(), ProcName: randString(rng, 12),
			Stack: stack, Count: rng.Uint64(), FirstNS: rng.Int63(), LastNS: rng.Int63(),
			Resource: trace.ResourceTags{VPCID: int32(rng.Intn(100)), IP: trace.IP(rng.Uint32())},
		})
	}
	return b
}

// batchEqual compares batches field by field, treating time.Time via Equal
// (wall-clock identity, not representation identity).
func batchEqual(t *testing.T, a, b *Batch) bool {
	t.Helper()
	if a.Host != b.Host || a.Seq != b.Seq ||
		len(a.Spans) != len(b.Spans) || len(a.Flows) != len(b.Flows) || len(a.Profiles) != len(b.Profiles) {
		return false
	}
	for i := range a.Spans {
		x, y := *a.Spans[i], *b.Spans[i]
		if !x.StartTime.Equal(y.StartTime) || !x.EndTime.Equal(y.EndTime) {
			return false
		}
		x.StartTime, y.StartTime = time.Time{}, time.Time{}
		x.EndTime, y.EndTime = time.Time{}, time.Time{}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	for i := range a.Flows {
		x, y := a.Flows[i], b.Flows[i]
		if !x.TS.Equal(y.TS) {
			return false
		}
		x.TS, y.TS = time.Time{}, time.Time{}
		if !reflect.DeepEqual(x, y) {
			return false
		}
	}
	for i := range a.Profiles {
		if !reflect.DeepEqual(a.Profiles[i], b.Profiles[i]) {
			return false
		}
	}
	return true
}

// TestCodecRoundTripProperty: for randomized batches — including empty
// ones and max-size tags — Decode(Encode(b)) equals b under every wire
// encoding (the non-smart name blocks are derived data and must not leak
// into the decoded batch).
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	resolve := func(rt trace.ResourceTags) [6]string {
		return [6]string{
			fmt.Sprintf("pod-%d", rt.PodID), fmt.Sprintf("node-%d", rt.NodeID),
			fmt.Sprintf("svc-%d", rt.ServiceID), fmt.Sprintf("ns-%d", rt.NSID),
			fmt.Sprintf("region-%d", rt.RegionID), fmt.Sprintf("az-%d", rt.AZID),
		}
	}
	for _, enc := range []WireEncoding{WireSmart, WireDirect, WireLowCard} {
		for i := 0; i < 200; i++ {
			var b *Batch
			if i == 0 {
				b = &Batch{Host: "empty-host", Seq: 1} // explicit empty batch
			} else {
				b = randBatch(rng, i)
			}
			e := Encoder{Enc: enc, Resolve: resolve}
			data := e.Encode(b)
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("%v batch %d: decode: %v", enc, i, err)
			}
			if !batchEqual(t, b, got) {
				t.Fatalf("%v batch %d: round trip mismatch\nin:  %+v\nout: %+v", enc, i, b, got)
			}
		}
	}
}

// TestCodecWireSizeOrdering: on tag-bearing spans the smart encoding is
// strictly the smallest wire representation; the dictionary encoding beats
// raw strings once names repeat.
func TestCodecWireSizeOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := &Batch{Host: "h", Seq: 1}
	for i := 0; i < 500; i++ {
		sp := randSpan(rng, i)
		sp.Custom = nil
		b.Spans = append(b.Spans, sp)
	}
	resolve := func(rt trace.ResourceTags) [6]string {
		return [6]string{
			fmt.Sprintf("pod-%d-some-longish-name", rt.PodID%50), fmt.Sprintf("node-%d.cluster.internal", rt.NodeID%16),
			fmt.Sprintf("service-%d", rt.ServiceID%20), "production",
			"region-eu-west", fmt.Sprintf("az-%d", rt.AZID%3),
		}
	}
	size := func(enc WireEncoding) int {
		e := Encoder{Enc: enc, Resolve: resolve}
		return len(e.Encode(b))
	}
	smart, direct, lowcard := size(WireSmart), size(WireDirect), size(WireLowCard)
	if !(smart < lowcard && lowcard < direct) {
		t.Fatalf("wire sizes: smart=%d lowcard=%d direct=%d, want smart < lowcard < direct", smart, lowcard, direct)
	}
}

// TestDecodeRejectsCorrupt: truncations and garbage fail loudly instead of
// yielding a half-decoded batch.
func TestDecodeRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := randBatch(rng, 1)
	b.Spans = append(b.Spans, randSpan(rng, 2))
	data := Encode(b)
	if _, err := Decode(nil); err == nil {
		t.Error("nil input decoded")
	}
	if _, err := Decode([]byte{0x00, 0x10}); err == nil {
		t.Error("bad magic decoded")
	}
	for _, cut := range []int{1, 2, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Error("trailing garbage decoded")
	}
}

package transport

import (
	"sync"
	"sync/atomic"
	"time"
)

// Queue is the bounded batch queue between the wire and the server's
// ingest shards. Push applies backpressure — it waits for space and
// accounts the wait — and every discarded batch is counted, never silent:
// the queue's whole contract is that loss is visible (the collection-plane
// analogue of the perf buffer's Lost counter).
type Queue struct {
	ch   chan []byte
	done chan struct{}
	once sync.Once

	enqueued atomic.Uint64
	dequeued atomic.Uint64
	dropped  atomic.Uint64
	waits    atomic.Uint64
	waitNS   atomic.Int64
}

// NewQueue creates a queue holding up to capacity encoded batches.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 256
	}
	return &Queue{ch: make(chan []byte, capacity), done: make(chan struct{})}
}

// Push enqueues one encoded batch, blocking while the queue is full
// (backpressure; the wait is accounted in Waits/WaitTime). It returns
// false — counting a drop — only when the queue is closed.
func (q *Queue) Push(enc []byte) bool {
	select {
	case <-q.done:
		q.dropped.Add(1)
		return false
	default:
	}
	select {
	case q.ch <- enc:
		q.enqueued.Add(1)
		return true
	default:
	}
	t0 := time.Now()
	select {
	case q.ch <- enc:
		q.waits.Add(1)
		q.waitNS.Add(time.Since(t0).Nanoseconds())
		q.enqueued.Add(1)
		return true
	case <-q.done:
		q.dropped.Add(1)
		return false
	}
}

// TryPush enqueues without blocking; a full or closed queue counts a drop
// and returns false. For callers that must not stall (lossy shippers).
func (q *Queue) TryPush(enc []byte) bool {
	select {
	case <-q.done:
		q.dropped.Add(1)
		return false
	default:
	}
	select {
	case q.ch <- enc:
		q.enqueued.Add(1)
		return true
	default:
		q.dropped.Add(1)
		return false
	}
}

// Pop dequeues one batch, blocking until one is available. It returns
// false only when the queue is closed and fully drained.
func (q *Queue) Pop() ([]byte, bool) {
	select {
	case enc := <-q.ch:
		q.dequeued.Add(1)
		return enc, true
	default:
	}
	select {
	case enc := <-q.ch:
		q.dequeued.Add(1)
		return enc, true
	case <-q.done:
		// Drain whatever raced in before the close.
		select {
		case enc := <-q.ch:
			q.dequeued.Add(1)
			return enc, true
		default:
			return nil, false
		}
	}
}

// Close stops the queue: blocked Pushes fail (counted as drops) and Pops
// return false once the backlog drains. Idempotent.
func (q *Queue) Close() { q.once.Do(func() { close(q.done) }) }

// Len returns the current backlog depth.
func (q *Queue) Len() int { return len(q.ch) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return cap(q.ch) }

// Enqueued returns the number of accepted batches.
func (q *Queue) Enqueued() uint64 { return q.enqueued.Load() }

// Dequeued returns the number of delivered batches.
func (q *Queue) Dequeued() uint64 { return q.dequeued.Load() }

// Dropped returns the number of discarded batches.
func (q *Queue) Dropped() uint64 { return q.dropped.Load() }

// Waits returns how many pushes had to block for space.
func (q *Queue) Waits() uint64 { return q.waits.Load() }

// WaitTime returns the cumulative backpressure wait.
func (q *Queue) WaitTime() time.Duration { return time.Duration(q.waitNS.Load()) }

package transport

import (
	"encoding/binary"
	"fmt"
	"time"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
)

func nsUTC(ns int64) time.Time     { return time.Unix(0, ns).UTC() }
func durNS(ns int64) time.Duration { return time.Duration(ns) }

// Wire format: a two-byte header (magic, version|encoding), the emitting
// host, a batch sequence number, three row counts, then the row sections.
// All integers are varints; strings are length-prefixed (see trace/wire.go
// for the per-span layout).
const (
	wireMagic   = 0xDF
	wireVersion = 1
)

// WireEncoding selects how resource tags travel on the wire — the
// transport-plane analogue of the server's storage Encoding, swept by the
// `dfbench ingest` experiment. The live path always uses WireSmart.
type WireEncoding uint8

// Wire encodings.
const (
	// WireSmart ships resource tags as eight small integers (VPC + IP and
	// six zero placeholders the server fills) — DeepFlow's design.
	WireSmart WireEncoding = iota
	// WireDirect additionally ships the six resolved tag names as raw
	// strings per span, as an agent would if names were resolved at the
	// edge ("direct storing" moved to the wire).
	WireDirect
	// WireLowCard ships resolved names through a per-batch dictionary:
	// names once, per-span indexes.
	WireLowCard
)

func (e WireEncoding) String() string {
	switch e {
	case WireSmart:
		return "smart-encoding"
	case WireDirect:
		return "direct"
	case WireLowCard:
		return "low-cardinality"
	default:
		return "wire?"
	}
}

// TagResolver resolves a span's integer resource tags to the six tag names
// (pod, node, service, namespace, region, az). Only the non-smart
// encodings need one; the experiment passes the server registry's decoder.
type TagResolver func(trace.ResourceTags) [6]string

// Encoder serializes batches under one wire encoding.
type Encoder struct {
	Enc     WireEncoding
	Resolve TagResolver // required for WireDirect / WireLowCard
}

// Encode serializes a batch. The smart encoding is canonical and lossless:
// Decode(Encode(b)) round-trips every field. The direct and low-cardinality
// encodings append resolved tag names after each span — redundant bytes
// derived from the integer tags, which is exactly the waste the experiment
// measures — and Decode discards them.
func (e *Encoder) Encode(b *Batch) []byte {
	buf := make([]byte, 0, 256+64*b.Rows())
	buf = append(buf, wireMagic, wireVersion<<4|byte(e.Enc))
	buf = appendString(buf, b.Host)
	buf = binary.AppendUvarint(buf, b.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Spans)))
	buf = binary.AppendUvarint(buf, uint64(len(b.Flows)))
	buf = binary.AppendUvarint(buf, uint64(len(b.Profiles)))

	var dict map[string]uint64
	if e.Enc == WireLowCard {
		// Per-batch name dictionary, in first-appearance order.
		dict = make(map[string]uint64)
		var names []string
		for _, sp := range b.Spans {
			for _, name := range e.resolve(sp.Resource) {
				if _, ok := dict[name]; !ok {
					dict[name] = uint64(len(names))
					names = append(names, name)
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(names)))
		for _, name := range names {
			buf = appendString(buf, name)
		}
	}

	for _, sp := range b.Spans {
		buf = trace.AppendSpan(buf, sp)
		switch e.Enc {
		case WireDirect:
			for _, name := range e.resolve(sp.Resource) {
				buf = appendString(buf, name)
			}
		case WireLowCard:
			for _, name := range e.resolve(sp.Resource) {
				buf = binary.AppendUvarint(buf, dict[name])
			}
		}
	}
	for i := range b.Flows {
		buf = AppendFlowSample(buf, &b.Flows[i])
	}
	for i := range b.Profiles {
		buf = AppendProfileSample(buf, &b.Profiles[i])
	}
	return buf
}

func (e *Encoder) resolve(rt trace.ResourceTags) [6]string {
	if e.Resolve == nil {
		return [6]string{}
	}
	return e.Resolve(rt)
}

// Encode serializes a batch under the canonical smart wire encoding — the
// live agent→server path.
func Encode(b *Batch) []byte {
	enc := Encoder{Enc: WireSmart}
	return enc.Encode(b)
}

// Decode deserializes a batch produced by any wire encoding. Tag-name
// blocks of the non-smart encodings are validated and discarded: the
// integer tags they were derived from travel in the span itself, so decode
// is lossless for every encoding.
func Decode(data []byte) (*Batch, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("transport: batch too short (%d bytes)", len(data))
	}
	if data[0] != wireMagic {
		return nil, fmt.Errorf("transport: bad magic 0x%02x", data[0])
	}
	version, enc := data[1]>>4, WireEncoding(data[1]&0x0f)
	if version != wireVersion {
		return nil, fmt.Errorf("transport: unsupported wire version %d", version)
	}
	if enc > WireLowCard {
		return nil, fmt.Errorf("transport: unknown wire encoding %d", enc)
	}
	r := trace.WireReader{Data: data, Pos: 2}
	b := &Batch{}
	b.Host = r.String()
	b.Seq = r.Uvarint()
	nSpans := r.Uvarint()
	nFlows := r.Uvarint()
	nProfiles := r.Uvarint()
	if r.Err != nil {
		return nil, r.Err
	}
	if nSpans+nFlows+nProfiles > uint64(len(data)) { // each row takes ≥1 byte
		return nil, fmt.Errorf("transport: impossible row counts (%d/%d/%d in %d bytes)",
			nSpans, nFlows, nProfiles, len(data))
	}

	var dictLen uint64
	if enc == WireLowCard {
		dictLen = r.Uvarint()
		for i := uint64(0); i < dictLen && r.Err == nil; i++ {
			_ = r.String() // names are redundant with the integer tags
		}
	}

	b.Spans = make([]*trace.Span, 0, nSpans)
	for i := uint64(0); i < nSpans; i++ {
		if r.Err != nil {
			return nil, r.Err
		}
		sp, n, err := trace.DecodeSpan(data[r.Pos:])
		if err != nil {
			return nil, err
		}
		r.Pos += n
		switch enc {
		case WireDirect:
			for j := 0; j < 6; j++ {
				_ = r.String() // redundant resolved names, discarded
			}
		case WireLowCard:
			for j := 0; j < 6; j++ {
				if idx := r.Uvarint(); idx >= dictLen && r.Err == nil {
					return nil, fmt.Errorf("transport: tag index %d out of dictionary (%d)", idx, dictLen)
				}
			}
		}
		b.Spans = append(b.Spans, sp)
	}
	for i := uint64(0); i < nFlows && r.Err == nil; i++ {
		b.Flows = append(b.Flows, DecodeFlowSample(&r))
	}
	for i := uint64(0); i < nProfiles && r.Err == nil; i++ {
		b.Profiles = append(b.Profiles, DecodeProfileSample(&r))
	}
	if r.Err != nil {
		return nil, r.Err
	}
	if r.Pos != len(data) {
		return nil, fmt.Errorf("transport: %d trailing bytes after batch", len(data)-r.Pos)
	}
	return b, nil
}

// AppendFlowSample appends one kernel flow sample's wire encoding.
// Exported (like AppendProfileSample) because sealed storage blocks
// (internal/dstore) persist flow and profile side-sections in this exact
// layout rather than inventing a second format.
func AppendFlowSample(buf []byte, f *FlowSample) []byte {
	buf = binary.AppendVarint(buf, f.TS.UnixNano())
	buf = appendString(buf, f.Host)
	buf = appendString(buf, f.NIC)
	buf = trace.AppendFiveTuple(buf, f.Tuple)
	buf = binary.AppendUvarint(buf, uint64(f.Delta.Retransmissions))
	buf = binary.AppendUvarint(buf, uint64(f.Delta.Resets))
	buf = binary.AppendUvarint(buf, uint64(f.Delta.ZeroWindows))
	buf = binary.AppendVarint(buf, int64(f.Delta.RTT))
	buf = binary.AppendUvarint(buf, f.Delta.BytesSent)
	buf = binary.AppendUvarint(buf, f.Delta.BytesReceived)
	buf = binary.AppendUvarint(buf, uint64(f.Delta.ARPRequests))
	buf = binary.AppendUvarint(buf, f.KernelPackets)
	return binary.AppendUvarint(buf, f.KernelBytes)
}

// DecodeFlowSample reads one flow sample (AppendFlowSample's inverse).
func DecodeFlowSample(r *trace.WireReader) FlowSample {
	var f FlowSample
	f.TS = nsUTC(r.Varint())
	f.Host = r.String()
	f.NIC = r.String()
	f.Tuple = r.FiveTuple()
	f.Delta.Retransmissions = uint32(r.Uvarint())
	f.Delta.Resets = uint32(r.Uvarint())
	f.Delta.ZeroWindows = uint32(r.Uvarint())
	f.Delta.RTT = durNS(r.Varint())
	f.Delta.BytesSent = r.Uvarint()
	f.Delta.BytesReceived = r.Uvarint()
	f.Delta.ARPRequests = uint32(r.Uvarint())
	f.KernelPackets = r.Uvarint()
	f.KernelBytes = r.Uvarint()
	return f
}

// AppendProfileSample appends one profile sample's wire encoding.
func AppendProfileSample(buf []byte, ps *profiling.Sample) []byte {
	buf = appendString(buf, ps.Host)
	buf = binary.AppendUvarint(buf, uint64(ps.PID))
	buf = appendString(buf, ps.ProcName)
	buf = binary.AppendUvarint(buf, uint64(len(ps.Stack)))
	for _, frame := range ps.Stack {
		buf = appendString(buf, frame)
	}
	buf = binary.AppendUvarint(buf, ps.Count)
	buf = binary.AppendVarint(buf, ps.FirstNS)
	buf = binary.AppendVarint(buf, ps.LastNS)
	return trace.AppendResourceTags(buf, ps.Resource)
}

// DecodeProfileSample reads one profile sample (AppendProfileSample's
// inverse).
func DecodeProfileSample(r *trace.WireReader) profiling.Sample {
	var ps profiling.Sample
	ps.Host = r.String()
	ps.PID = uint32(r.Uvarint())
	ps.ProcName = r.String()
	if n := r.Uvarint(); n > 0 && r.Err == nil {
		if n > uint64(len(r.Data)-r.Pos) {
			r.Fail("profile stack")
			return ps
		}
		ps.Stack = make([]string, 0, n)
		for i := uint64(0); i < n && r.Err == nil; i++ {
			ps.Stack = append(ps.Stack, r.String())
		}
	}
	ps.Count = r.Uvarint()
	ps.FirstNS = r.Varint()
	ps.LastNS = r.Varint()
	ps.Resource = r.ResourceTags()
	return ps
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Package transport is the batched collection plane between DeepFlow
// agents and the server (paper §3.4: agents ship compact int-tagged rows to
// a server ingesting ~2·10⁵ rows/s/node). It replaces per-item method calls
// with a flush-window Batch envelope, a compact binary wire codec whose
// size is measurable in bytes (so smart encoding's "agents send only ints"
// claim shows up on the wire, not just in storage), and a bounded queue
// with backpressure waits and counted — never silent — drops feeding the
// server's parallel ingest shards.
package transport

import (
	"time"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
)

// FlowSample is one interval's network metrics for a flow at a capture
// point, exported to the metrics plane for tag-based correlation (§3.4).
// It lives here because it is a wire row; internal/agent aliases it.
type FlowSample struct {
	TS    time.Time
	Host  string
	NIC   string
	Tuple trace.FiveTuple // canonical
	Delta trace.NetMetrics

	// KernelPackets/KernelBytes are scraped from the in-kernel
	// flow-statistics map (aggregated by the eBPF plane, not per-event).
	KernelPackets uint64
	KernelBytes   uint64
}

// Batch is one flush window's output from one agent: every span, flow
// sample, and profile sample accumulated since the previous flush, shipped
// as a single wire message instead of per-item calls.
type Batch struct {
	Host string // emitting agent's host
	Seq  uint64 // per-agent batch sequence number (gap = lost batch)

	Spans    []*trace.Span
	Flows    []FlowSample
	Profiles []profiling.Sample
}

// Empty reports whether the batch carries no rows.
func (b *Batch) Empty() bool {
	return len(b.Spans) == 0 && len(b.Flows) == 0 && len(b.Profiles) == 0
}

// Rows returns the total row count across all three planes.
func (b *Batch) Rows() int { return len(b.Spans) + len(b.Flows) + len(b.Profiles) }

// Reset clears the row slices, keeping capacity and identity for reuse as
// the agent's accumulation buffer.
func (b *Batch) Reset() {
	b.Spans = b.Spans[:0]
	b.Flows = b.Flows[:0]
	b.Profiles = b.Profiles[:0]
}

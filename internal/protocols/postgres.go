package protocols

import (
	"encoding/binary"
	"strings"

	"deepflow/internal/trace"
)

// PostgresCodec implements the PostgreSQL simple-query sub-protocol
// (frontend/backend protocol 3.0): tagged messages with a big-endian
// length that includes itself but not the tag byte. Queries are answered
// in order — pipeline protocol, like MySQL.
//
// Messages understood:
//
//	'Q' (frontend) simple query: length, SQL text, NUL terminator
//	'C' (backend)  CommandComplete: length, command tag, NUL — OK response
//	'E' (backend)  ErrorResponse: length, fields ('C' SQLSTATE, 'M'
//	               message; each NUL-terminated), NUL terminator
type PostgresCodec struct{}

// Proto implements Codec.
func (PostgresCodec) Proto() trace.L7Proto { return trace.L7Postgres }

// Traits implements TraitedCodec.
func (PostgresCodec) Traits() Traits {
	return Traits{FirstBytes: []byte{'Q', 'C', 'E'}, MinLen: 6}
}

// Infer implements Codec: known tag and an exact self-describing length.
func (PostgresCodec) Infer(payload []byte) bool {
	if len(payload) < 6 {
		return false
	}
	switch payload[0] {
	case 'Q', 'C', 'E':
	default:
		return false
	}
	plen := int(binary.BigEndian.Uint32(payload[1:]))
	return plen >= 4 && plen+1 == len(payload) && payload[len(payload)-1] == 0
}

// ParseHeader implements HeaderParser: the tag byte classifies the
// message; error responses scan for the SQLSTATE field without building
// any strings.
func (PostgresCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 6 {
		return HeaderInfo{}, ErrShort
	}
	plen := int(binary.BigEndian.Uint32(payload[1:]))
	hi := HeaderInfo{TotalLen: plen + 1}
	switch payload[0] {
	case 'Q':
		hi.Type = trace.MsgRequest
	case 'C':
		hi.Type = trace.MsgResponse
		hi.Status = "ok"
	case 'E':
		hi.Type = trace.MsgResponse
		hi.Status = "error"
		hi.Code = 1
	default:
		return HeaderInfo{}, errMalformed(trace.L7Postgres, "unknown tag")
	}
	return hi, nil
}

// Parse implements Codec.
func (PostgresCodec) Parse(payload []byte) (Message, error) {
	hi, err := PostgresCodec{}.ParseHeader(payload)
	if err != nil {
		return Message{}, err
	}
	msg := Message{
		Proto:    trace.L7Postgres,
		Type:     hi.Type,
		Code:     hi.Code,
		Status:   hi.Status,
		TotalLen: hi.TotalLen,
	}
	body := payload[5:]
	switch payload[0] {
	case 'Q':
		sql := string(cutAtNUL(body))
		msg.Method = firstSQLWord(sql)
		msg.Resource = firstSQLWords(sql)
	case 'C':
		// Command tag, e.g. "SELECT 3"; frames may pad past the NUL to
		// model row data already streamed on the wire.
		msg.Method = string(cutAtNUL(body))
	case 'E':
		// Fields: type byte + NUL-terminated value, terminated by an
		// empty field. SQLSTATE ('C') becomes the resource.
		for len(body) > 1 {
			ft := body[0]
			rest := body[1:]
			i := 0
			for i < len(rest) && rest[i] != 0 {
				i++
			}
			if ft == 'C' {
				msg.Resource = string(rest[:i])
			}
			if i >= len(rest) {
				break
			}
			body = rest[i+1:]
		}
	}
	return msg, nil
}

// cutAtNUL returns the prefix of b before its first NUL byte.
func cutAtNUL(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

// firstSQLWord returns the statement's leading keyword, uppercased.
func firstSQLWord(sql string) string {
	fields := strings.Fields(sql)
	if len(fields) == 0 {
		return "QUERY"
	}
	return strings.ToUpper(fields[0])
}

// EncodePostgresQuery builds a simple-query ('Q') message.
func EncodePostgresQuery(sql string) []byte {
	out := make([]byte, 5+len(sql)+1)
	out[0] = 'Q'
	binary.BigEndian.PutUint32(out[1:], uint32(len(out)-1))
	copy(out[5:], sql)
	return out
}

// EncodePostgresComplete builds a CommandComplete ('C') response with the
// given command tag (e.g. "SELECT 3"); padding zero bytes model row data
// already streamed on the wire.
func EncodePostgresComplete(tag string, padding int) []byte {
	out := make([]byte, 5+len(tag)+1+padding)
	out[0] = 'C'
	binary.BigEndian.PutUint32(out[1:], uint32(len(out)-1))
	copy(out[5:], tag)
	return out
}

// EncodePostgresError builds an ErrorResponse ('E') with a SQLSTATE code
// and message.
func EncodePostgresError(sqlstate, message string) []byte {
	body := make([]byte, 0, 2+len(sqlstate)+2+len(message)+2)
	body = append(body, 'C')
	body = append(body, sqlstate...)
	body = append(body, 0)
	body = append(body, 'M')
	body = append(body, message...)
	body = append(body, 0)
	body = append(body, 0) // field-list terminator
	out := make([]byte, 5+len(body))
	out[0] = 'E'
	binary.BigEndian.PutUint32(out[1:], uint32(len(out)-1))
	copy(out[5:], body)
	return out
}

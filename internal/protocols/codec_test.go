package protocols

import (
	"testing"
	"testing/quick"

	"deepflow/internal/trace"
)

func TestHTTPRequestRoundTrip(t *testing.T) {
	payload := EncodeHTTPRequest("GET", "/api/users/42", map[string]string{
		"Host":         "users.svc",
		"Traceparent":  "00-aaaa-bbbb-01",
		"X-Request-Id": "req-123",
	}, 10)
	var c HTTPCodec
	if !c.Infer(payload) {
		t.Fatal("inference failed")
	}
	msg, err := c.Parse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != trace.MsgRequest || msg.Method != "GET" || msg.Resource != "/api/users/42" {
		t.Fatalf("msg = %+v", msg)
	}
	if msg.Header("traceparent") != "00-aaaa-bbbb-01" || msg.Header("x-request-id") != "req-123" {
		t.Fatalf("headers = %v", msg.Headers)
	}
	if msg.TotalLen != len(payload) {
		t.Fatalf("TotalLen = %d, want %d", msg.TotalLen, len(payload))
	}
}

func TestHTTPResponseStatuses(t *testing.T) {
	var c HTTPCodec
	ok, err := c.Parse(EncodeHTTPResponse(200, nil, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Type != trace.MsgResponse || ok.Code != 200 || ok.Status != "ok" {
		t.Fatalf("200 = %+v", ok)
	}
	for _, code := range []int{400, 404, 500, 503} {
		m, err := c.Parse(EncodeHTTPResponse(code, nil, 0))
		if err != nil {
			t.Fatal(err)
		}
		if m.Status != "error" || m.Code != int32(code) {
			t.Errorf("code %d parsed as %+v", code, m)
		}
	}
}

func TestHTTPTotalLenWithPartialBody(t *testing.T) {
	full := EncodeHTTPRequest("POST", "/upload", nil, 5000)
	headEnd := len(full) - 5000
	truncated := full[:headEnd+100] // only 100 body bytes captured
	var c HTTPCodec
	msg, err := c.Parse(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if msg.TotalLen != len(full) {
		t.Fatalf("TotalLen = %d, want %d (declared via Content-Length)", msg.TotalLen, len(full))
	}
}

func TestHTTP2RoundTrip(t *testing.T) {
	var c HTTP2Codec
	req := EncodeHTTP2Request(7, "POST", "/reviews/5", map[string]string{"x-request-id": "r-9"}, 64)
	if !c.Infer(req) {
		t.Fatal("request inference failed")
	}
	m, err := c.Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "POST" || m.Resource != "/reviews/5" || m.StreamID != 7 {
		t.Fatalf("req = %+v", m)
	}
	if m.Header("x-request-id") != "r-9" {
		t.Fatalf("headers = %v", m.Headers)
	}
	if m.TotalLen != len(req) {
		t.Fatalf("TotalLen = %d, want %d", m.TotalLen, len(req))
	}

	resp := EncodeHTTP2Response(7, 504, nil, 0)
	rm, err := c.Parse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != trace.MsgResponse || rm.Code != 504 || rm.Status != "error" || rm.StreamID != 7 {
		t.Fatalf("resp = %+v", rm)
	}
}

func TestDNSRoundTrip(t *testing.T) {
	var c DNSCodec
	q := EncodeDNSQuery(0x1234, "reviews.default.svc.cluster.local", 1)
	if !c.Infer(q) {
		t.Fatal("query inference failed")
	}
	m, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Resource != "reviews.default.svc.cluster.local" || m.Method != "A" || m.StreamID != 0x1234 {
		t.Fatalf("query = %+v", m)
	}

	r := EncodeDNSResponse(0x1234, "reviews.default.svc.cluster.local", 1, 0, 2)
	rm, err := c.Parse(r)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Type != trace.MsgResponse || rm.Status != "ok" || rm.StreamID != 0x1234 {
		t.Fatalf("response = %+v", rm)
	}

	nx := EncodeDNSResponse(9, "missing.local", 1, 3, 0)
	nm, _ := c.Parse(nx)
	if nm.Status != "error" || nm.Code != 3 {
		t.Fatalf("NXDOMAIN = %+v", nm)
	}
}

func TestRedisRoundTrip(t *testing.T) {
	var c RedisCodec
	cmd := EncodeRedisCommand("GET", "user:42")
	if !c.Infer(cmd) {
		t.Fatal("command inference failed")
	}
	m, err := c.Parse(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "GET" || m.Resource != "user:42" {
		t.Fatalf("cmd = %+v", m)
	}

	ok, _ := c.Parse(EncodeRedisReply(100, ""))
	if ok.Type != trace.MsgResponse || ok.Status != "ok" {
		t.Fatalf("reply = %+v", ok)
	}
	er, _ := c.Parse(EncodeRedisReply(0, "wrong type"))
	if er.Status != "error" {
		t.Fatalf("error reply = %+v", er)
	}
}

func TestMySQLRoundTrip(t *testing.T) {
	var c MySQLCodec
	q := EncodeMySQLQuery("SELECT * FROM orders WHERE id = 7")
	if !c.Infer(q) {
		t.Fatal("query inference failed")
	}
	m, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "COM_QUERY" || m.Resource != "SELECT * FROM orders" {
		t.Fatalf("query = %+v", m)
	}

	ok, _ := c.Parse(EncodeMySQLOK(10))
	if ok.Type != trace.MsgResponse || ok.Status != "ok" {
		t.Fatalf("ok = %+v", ok)
	}
	er, _ := c.Parse(EncodeMySQLErr(1146))
	if er.Status != "error" || er.Code != 1146 {
		t.Fatalf("err = %+v", er)
	}
}

func TestKafkaRoundTrip(t *testing.T) {
	var c KafkaCodec
	req := EncodeKafkaRequest(KafkaProduce, 888, "orders", 256)
	if !c.Infer(req) {
		t.Fatal("request inference failed")
	}
	m, err := c.Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "Produce" || m.Resource != "orders" || m.StreamID != 888 {
		t.Fatalf("req = %+v", m)
	}
	resp := EncodeKafkaResponse(888, 0, 16)
	rm, _ := c.Parse(resp)
	if rm.Type != trace.MsgResponse || rm.Status != "ok" || rm.StreamID != 888 {
		t.Fatalf("resp = %+v", rm)
	}
	bad, _ := c.Parse(EncodeKafkaResponse(9, 7, 0))
	if bad.Status != "error" || bad.Code != 7 {
		t.Fatalf("error resp = %+v", bad)
	}
}

func TestMQTTRoundTrip(t *testing.T) {
	var c MQTTCodec
	pub := EncodeMQTTPublish("sensors/temp", 300)
	if !c.Infer(pub) {
		t.Fatal("publish inference failed")
	}
	m, err := c.Parse(pub)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "PUBLISH" || m.Resource != "sensors/temp" {
		t.Fatalf("publish = %+v", m)
	}
	if m.TotalLen != len(pub) {
		t.Fatalf("TotalLen = %d, want %d", m.TotalLen, len(pub))
	}
	ack, _ := c.Parse(EncodeMQTTPuback())
	if ack.Type != trace.MsgResponse || ack.Method != "PUBACK" || ack.Status != "ok" {
		t.Fatalf("puback = %+v", ack)
	}
}

func TestDubboRoundTrip(t *testing.T) {
	var c DubboCodec
	req := EncodeDubboRequest(0xCAFE, "com.acme.OrderService", "getOrder", 128)
	if !c.Infer(req) {
		t.Fatal("request inference failed")
	}
	m, err := c.Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Resource != "com.acme.OrderService" || m.Method != "getOrder" || m.StreamID != 0xCAFE {
		t.Fatalf("req = %+v", m)
	}
	ok, _ := c.Parse(EncodeDubboResponse(0xCAFE, DubboStatusOK, 8))
	if ok.Type != trace.MsgResponse || ok.Status != "ok" || ok.StreamID != 0xCAFE {
		t.Fatalf("ok = %+v", ok)
	}
	er, _ := c.Parse(EncodeDubboResponse(1, 50, 0))
	if er.Status != "error" || er.Code != 50 {
		t.Fatalf("err = %+v", er)
	}
}

// TestInferenceMatrix checks that every codec identifies its own messages
// and rejects every other protocol's messages via the registry ordering —
// the property one-shot connection inference depends on.
func TestInferenceMatrix(t *testing.T) {
	samples := map[trace.L7Proto][][]byte{
		trace.L7HTTP: {
			EncodeHTTPRequest("GET", "/x", nil, 0),
			EncodeHTTPResponse(200, nil, 4),
		},
		trace.L7HTTP2: {
			EncodeHTTP2Request(1, "GET", "/x", nil, 0),
			EncodeHTTP2Response(1, 200, nil, 0),
		},
		trace.L7DNS: {
			EncodeDNSQuery(7, "svc.local", 1),
		},
		trace.L7Redis: {
			EncodeRedisCommand("SET", "k", "v"),
			EncodeRedisReply(3, ""),
		},
		trace.L7MySQL: {
			EncodeMySQLQuery("SELECT 1"),
			EncodeMySQLOK(0),
		},
		trace.L7Kafka: {
			EncodeKafkaRequest(KafkaFetch, 1, "t", 0),
		},
		trace.L7MQTT: {
			EncodeMQTTPublish("a/b", 10),
			EncodeMQTTPuback(),
		},
		trace.L7Dubbo: {
			EncodeDubboRequest(1, "Svc", "m", 0),
			EncodeDubboResponse(1, DubboStatusOK, 0),
		},
	}
	for proto, payloads := range samples {
		for i, payload := range payloads {
			c := Infer(payload, nil)
			if c == nil {
				t.Errorf("%v sample %d: no codec inferred", proto, i)
				continue
			}
			if c.Proto() != proto {
				t.Errorf("%v sample %d inferred as %v", proto, i, c.Proto())
			}
		}
	}
}

func TestInferRejectsGarbage(t *testing.T) {
	for _, garbage := range [][]byte{
		nil,
		{},
		{0x16, 0x03, 0x01},            // TLS handshake
		[]byte("random text message"), // free text
		{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
	} {
		if c := Infer(garbage, nil); c != nil {
			t.Errorf("garbage %q inferred as %v", garbage, c.Proto())
		}
	}
}

func TestByProtoAndParallel(t *testing.T) {
	for _, c := range Registry() {
		if got := ByProto(c.Proto()); got == nil || got.Proto() != c.Proto() {
			t.Errorf("ByProto(%v) = %v", c.Proto(), got)
		}
	}
	if ByProto(trace.L7Unknown) != nil {
		t.Error("ByProto(unknown) should be nil")
	}
	if _, err := (TLSCodec{}).Parse([]byte{22, 3, 1, 0, 0}); err == nil {
		t.Error("TLS payloads must not parse")
	}
	parallel := []trace.L7Proto{trace.L7HTTP2, trace.L7DNS, trace.L7Kafka, trace.L7Dubbo}
	pipeline := []trace.L7Proto{trace.L7HTTP, trace.L7Redis, trace.L7MySQL, trace.L7MQTT}
	for _, p := range parallel {
		if !IsParallel(p) {
			t.Errorf("%v should be parallel", p)
		}
	}
	for _, p := range pipeline {
		if IsParallel(p) {
			t.Errorf("%v should be pipeline", p)
		}
	}
}

func TestParseMalformedInputs(t *testing.T) {
	codecs := Registry()
	inputs := [][]byte{
		nil, {}, {0}, {1, 2}, []byte("\r\n"), []byte("GET"),
		[]byte("HTTP/1.1\r\n"),
	}
	for _, c := range codecs {
		for _, in := range inputs {
			// Must not panic; error or degraded message both acceptable.
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%v.Parse(%q) panicked: %v", c.Proto(), in, r)
					}
				}()
				c.Parse(in)
			}()
		}
	}
}

// Property: codecs never panic on arbitrary bytes, and inference of random
// bytes never claims Dubbo/HTTP2 (strong magic protocols).
func TestParseFuzzProperty(t *testing.T) {
	codecs := Registry()
	prop := func(data []byte) bool {
		for _, c := range codecs {
			func() {
				defer func() { recover() }()
				c.Parse(data)
			}()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPMethodsInference(t *testing.T) {
	var c HTTPCodec
	for _, m := range []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"} {
		if !c.Infer([]byte(m + " /x HTTP/1.1\r\n\r\n")) {
			t.Errorf("method %s not inferred", m)
		}
	}
	if c.Infer([]byte("GETX /x HTTP/1.1")) {
		t.Error("bogus method inferred")
	}
}

func TestGRPCRoundTrip(t *testing.T) {
	var c GRPCCodec
	req := EncodeGRPCRequest(9, "/acme.Cart/AddItem", map[string]string{
		"traceparent":  "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"x-request-id": "r-42",
	}, 128)
	if !c.Infer(req) {
		t.Fatal("request inference failed")
	}
	m, err := c.Parse(req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "POST" || m.Resource != "/acme.Cart/AddItem" || m.StreamID != 9 {
		t.Fatalf("req = %+v", m)
	}
	if m.Headers["x-request-id"] != "r-42" {
		t.Fatalf("headers = %v", m.Headers)
	}

	ok, err := c.Parse(EncodeGRPCResponse(9, GRPCStatusOK, 64))
	if err != nil {
		t.Fatal(err)
	}
	if ok.Type != trace.MsgResponse || ok.Status != "ok" || ok.Code != GRPCStatusOK || ok.StreamID != 9 {
		t.Fatalf("ok = %+v", ok)
	}
	// Responses must never carry association headers: that property is what
	// makes gRPC fast-path eligible.
	for _, k := range []string{"x-request-id", "traceparent", "b3"} {
		if _, found := ok.Headers[k]; found {
			t.Fatalf("response carries association header %q", k)
		}
	}
	er, err := c.Parse(EncodeGRPCResponse(11, GRPCStatusUnavailable, 0))
	if err != nil {
		t.Fatal(err)
	}
	if er.Status != "error" || er.Code != GRPCStatusUnavailable || er.StreamID != 11 {
		t.Fatalf("err = %+v", er)
	}
}

func TestPostgresRoundTrip(t *testing.T) {
	var c PostgresCodec
	q := EncodePostgresQuery("select * from orders where id = 7")
	if !c.Infer(q) {
		t.Fatal("query inference failed")
	}
	m, err := c.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "SELECT" || m.Resource != "select * from orders" {
		t.Fatalf("query = %+v", m)
	}

	done, err := c.Parse(EncodePostgresComplete("SELECT 3", 40))
	if err != nil {
		t.Fatal(err)
	}
	if done.Type != trace.MsgResponse || done.Status != "ok" || done.Method != "SELECT 3" {
		t.Fatalf("complete = %+v", done)
	}
	er, err := c.Parse(EncodePostgresError("42P01", "relation does not exist"))
	if err != nil {
		t.Fatal(err)
	}
	if er.Status != "error" || er.Code != 1 || er.Resource != "42P01" {
		t.Fatalf("error = %+v", er)
	}
	if c.Infer([]byte("Queen of the night")) {
		t.Error("non-framed text inferred as postgres")
	}
}

func TestAMQPRoundTrip(t *testing.T) {
	var c AMQPCodec
	pub := EncodeAMQPPublish(3, "orders", "order.created", 256)
	if !c.Infer(pub) {
		t.Fatal("publish inference failed")
	}
	m, err := c.Parse(pub)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != trace.MsgRequest || m.Method != "basic.publish" || m.Resource != "orders/order.created" {
		t.Fatalf("publish = %+v", m)
	}
	defaultEx, err := c.Parse(EncodeAMQPPublish(3, "", "order.created", 0))
	if err != nil {
		t.Fatal(err)
	}
	if defaultEx.Resource != "order.created" {
		t.Fatalf("default-exchange publish = %+v", defaultEx)
	}

	ack, err := c.Parse(EncodeAMQPAck(3))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != trace.MsgResponse || ack.Status != "ok" || ack.Method != "basic.ack" {
		t.Fatalf("ack = %+v", ack)
	}
	cl, err := c.Parse(EncodeAMQPClose(3, 312, "NO_ROUTE"))
	if err != nil {
		t.Fatal(err)
	}
	if cl.Status != "error" || cl.Code != 312 || cl.Resource != "NO_ROUTE" {
		t.Fatalf("close = %+v", cl)
	}
	// A method frame with a truncated size field must not infer.
	bad := EncodeAMQPAck(3)
	bad = bad[:len(bad)-1]
	if c.Infer(bad) {
		t.Error("frame without end octet inferred")
	}
}

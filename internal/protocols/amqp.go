package protocols

import (
	"encoding/binary"

	"deepflow/internal/trace"
)

// AMQPCodec implements AMQP 0-9-1 method framing: a one-byte frame type,
// a channel number, a size-prefixed payload of class+method identifiers,
// and the 0xCE frame-end octet. Within a channel, synchronous methods are
// answered in order — pipeline protocol.
//
// Frame layout (big endian):
//
//	0:  u8  frame type (1 = method)
//	1:  u16 channel
//	3:  u32 payload size (bytes between this header and the end octet)
//	7:  u16 class id, 9: u16 method id
//	11: method arguments
//	end: 0xCE frame-end octet
//
// Methods understood: basic.publish (60,40) — request, carrying u8-length
// exchange and routing-key strings; basic.ack (60,80) — OK response;
// channel.close (20,40) — error response with a u16 reply code and
// u8-length reply text.
type AMQPCodec struct{}

// Proto implements Codec.
func (AMQPCodec) Proto() trace.L7Proto { return trace.L7AMQP }

// AMQP class/method identifiers the codec understands.
const (
	amqpFrameMethod = 1
	amqpFrameEnd    = 0xCE

	amqpClassConnection = 10
	amqpClassChannel    = 20
	amqpClassBasic      = 60

	amqpBasicPublish = 40
	amqpBasicAck     = 80
	amqpChannelClose = 40
)

// Traits implements TraitedCodec.
func (AMQPCodec) Traits() Traits {
	return Traits{FirstBytes: []byte{amqpFrameMethod}, MinLen: 12}
}

// amqpClassMethod validates the frame envelope and returns the class and
// method identifiers.
func amqpClassMethod(payload []byte) (class, method uint16, ok bool) {
	if len(payload) < 12 || payload[0] != amqpFrameMethod {
		return 0, 0, false
	}
	be := binary.BigEndian
	size := int(be.Uint32(payload[3:]))
	if size+8 != len(payload) || payload[len(payload)-1] != amqpFrameEnd {
		return 0, 0, false
	}
	return be.Uint16(payload[7:]), be.Uint16(payload[9:]), true
}

// Infer implements Codec.
func (AMQPCodec) Infer(payload []byte) bool {
	class, method, ok := amqpClassMethod(payload)
	if !ok {
		return false
	}
	switch {
	case class == amqpClassBasic && (method == amqpBasicPublish || method == amqpBasicAck):
		return true
	case class == amqpClassChannel && method == amqpChannelClose:
		return true
	}
	return false
}

// ParseHeader implements HeaderParser: the class+method pair classifies
// the message; channel.close carries its reply code at a fixed offset.
func (AMQPCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 12 {
		return HeaderInfo{}, ErrShort
	}
	class, method, ok := amqpClassMethod(payload)
	if !ok {
		return HeaderInfo{}, errMalformed(trace.L7AMQP, "bad frame envelope")
	}
	hi := HeaderInfo{TotalLen: len(payload)}
	switch {
	case class == amqpClassBasic && method == amqpBasicPublish:
		hi.Type = trace.MsgRequest
	case class == amqpClassBasic && method == amqpBasicAck:
		hi.Type = trace.MsgResponse
		hi.Status = "ok"
	case class == amqpClassChannel && method == amqpChannelClose:
		hi.Type = trace.MsgResponse
		hi.Status = "error"
		hi.Code = 541 // internal-error default
		if len(payload) >= 14 {
			hi.Code = int32(binary.BigEndian.Uint16(payload[11:]))
		}
	default:
		return HeaderInfo{}, errMalformed(trace.L7AMQP, "unknown class/method")
	}
	return hi, nil
}

// Parse implements Codec.
func (AMQPCodec) Parse(payload []byte) (Message, error) {
	hi, err := AMQPCodec{}.ParseHeader(payload)
	if err != nil {
		return Message{}, err
	}
	msg := Message{
		Proto:    trace.L7AMQP,
		Type:     hi.Type,
		Code:     hi.Code,
		Status:   hi.Status,
		TotalLen: hi.TotalLen,
	}
	body := payload[11 : len(payload)-1]
	class, method, _ := amqpClassMethod(payload)
	switch {
	case class == amqpClassBasic && method == amqpBasicPublish:
		msg.Method = "basic.publish"
		exchange, rest, ok := amqpShortStr(body)
		if !ok {
			return Message{}, errMalformed(trace.L7AMQP, "truncated exchange")
		}
		rkey, _, ok := amqpShortStr(rest)
		if !ok {
			return Message{}, errMalformed(trace.L7AMQP, "truncated routing key")
		}
		if exchange != "" {
			msg.Resource = exchange + "/" + rkey
		} else {
			msg.Resource = rkey
		}
	case class == amqpClassBasic && method == amqpBasicAck:
		msg.Method = "basic.ack"
	case class == amqpClassChannel && method == amqpChannelClose:
		msg.Method = "channel.close"
		if len(body) >= 2 {
			if text, _, ok := amqpShortStr(body[2:]); ok {
				msg.Resource = text
			}
		}
	}
	return msg, nil
}

// amqpShortStr decodes a u8-length-prefixed string.
func amqpShortStr(b []byte) (string, []byte, bool) {
	if len(b) < 1 {
		return "", nil, false
	}
	n := int(b[0])
	if 1+n > len(b) {
		return "", nil, false
	}
	return string(b[1 : 1+n]), b[1+n:], true
}

// amqpFrame wraps a method payload in the frame envelope.
func amqpFrame(channel uint16, body []byte) []byte {
	out := make([]byte, 7+len(body)+1)
	be := binary.BigEndian
	out[0] = amqpFrameMethod
	be.PutUint16(out[1:], channel)
	be.PutUint32(out[3:], uint32(len(body)))
	copy(out[7:], body)
	out[len(out)-1] = amqpFrameEnd
	return out
}

// EncodeAMQPPublish builds a basic.publish frame; bodyLen zero bytes model
// the message content that would follow in content frames.
func EncodeAMQPPublish(channel uint16, exchange, routingKey string, bodyLen int) []byte {
	body := make([]byte, 0, 4+2+len(exchange)+len(routingKey)+bodyLen)
	var cm [4]byte
	be := binary.BigEndian
	be.PutUint16(cm[0:], amqpClassBasic)
	be.PutUint16(cm[2:], amqpBasicPublish)
	body = append(body, cm[:]...)
	body = append(body, byte(len(exchange)))
	body = append(body, exchange...)
	body = append(body, byte(len(routingKey)))
	body = append(body, routingKey...)
	body = append(body, make([]byte, bodyLen)...)
	return amqpFrame(channel, body)
}

// EncodeAMQPAck builds a basic.ack frame.
func EncodeAMQPAck(channel uint16) []byte {
	var cm [4]byte
	be := binary.BigEndian
	be.PutUint16(cm[0:], amqpClassBasic)
	be.PutUint16(cm[2:], amqpBasicAck)
	return amqpFrame(channel, cm[:])
}

// EncodeAMQPClose builds a channel.close error frame with a reply code and
// text.
func EncodeAMQPClose(channel uint16, replyCode uint16, replyText string) []byte {
	body := make([]byte, 0, 4+2+1+len(replyText))
	var tmp [4]byte
	be := binary.BigEndian
	be.PutUint16(tmp[0:], amqpClassChannel)
	be.PutUint16(tmp[2:], amqpChannelClose)
	body = append(body, tmp[:]...)
	be.PutUint16(tmp[0:], replyCode)
	body = append(body, tmp[:2]...)
	body = append(body, byte(len(replyText)))
	body = append(body, replyText...)
	return amqpFrame(channel, body)
}

package protocols

import (
	"encoding/binary"
	"strings"

	"deepflow/internal/trace"
)

// DNSCodec implements the RFC 1035 wire format (one question, no EDNS).
// DNS is a parallel protocol: responses are matched to requests by the
// 16-bit message ID (paper §3.3.1 cites "IDs in DNS headers").
type DNSCodec struct{}

// Proto implements Codec.
func (DNSCodec) Proto() trace.L7Proto { return trace.L7DNS }

// Traits implements TraitedCodec. The leading 16-bit message ID can hold
// any value, so DNS is probed on every first byte.
func (DNSCodec) Traits() Traits {
	return Traits{Parallel: true, MinLen: 12}
}

// ParseHeader implements HeaderParser: ID and rcode from the fixed header;
// the question name is validated (Parse rejects bad names) but not decoded.
func (DNSCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 12 {
		return HeaderInfo{}, ErrShort
	}
	be := binary.BigEndian
	off, ok := dnsNameEnd(payload, 12)
	if !ok || off+4 > len(payload) {
		return HeaderInfo{}, errMalformed(trace.L7DNS, "bad question section")
	}
	flags := be.Uint16(payload[2:])
	hi := HeaderInfo{
		StreamID: uint64(be.Uint16(payload[0:])),
		TotalLen: len(payload),
	}
	if flags&0x8000 == 0 {
		hi.Type = trace.MsgRequest
		return hi, nil
	}
	hi.Type = trace.MsgResponse
	rcode := int32(flags & 0xF)
	hi.Code = rcode
	if rcode == 0 {
		hi.Status = "ok"
	} else {
		hi.Status = "error"
	}
	return hi, nil
}

// Infer implements Codec.
func (DNSCodec) Infer(payload []byte) bool {
	if len(payload) < 12 {
		return false
	}
	be := binary.BigEndian
	flags := be.Uint16(payload[2:])
	qd := be.Uint16(payload[4:])
	// Opcode must be QUERY (0) and exactly one question; Z bits zero.
	if qd != 1 || flags&0x0070 != 0 || (flags>>11)&0xF != 0 {
		return false
	}
	_, _, ok := dnsName(payload, 12)
	return ok
}

// dnsName decodes a label sequence starting at off; returns the dotted name
// and the offset just past the terminating zero byte.
func dnsName(b []byte, off int) (string, int, bool) {
	var labels []string
	for {
		if off >= len(b) {
			return "", 0, false
		}
		n := int(b[off])
		off++
		if n == 0 {
			break
		}
		if n > 63 || off+n > len(b) {
			return "", 0, false
		}
		labels = append(labels, string(b[off:off+n]))
		off += n
	}
	if len(labels) == 0 {
		return "", 0, false
	}
	return strings.Join(labels, "."), off, true
}

// dnsNameEnd validates a label sequence without decoding it — the
// allocation-free check behind ParseHeader.
func dnsNameEnd(b []byte, off int) (int, bool) {
	labels := 0
	for {
		if off >= len(b) {
			return 0, false
		}
		n := int(b[off])
		off++
		if n == 0 {
			break
		}
		if n > 63 || off+n > len(b) {
			return 0, false
		}
		labels++
		off += n
	}
	return off, labels > 0
}

var dnsTypes = map[uint16]string{1: "A", 5: "CNAME", 15: "MX", 16: "TXT", 28: "AAAA", 33: "SRV"}

// Parse implements Codec.
func (DNSCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 12 {
		return Message{}, ErrShort
	}
	be := binary.BigEndian
	id := be.Uint16(payload[0:])
	flags := be.Uint16(payload[2:])
	name, off, ok := dnsName(payload, 12)
	if !ok || off+4 > len(payload) {
		return Message{}, errMalformed(trace.L7DNS, "bad question section")
	}
	qtype := be.Uint16(payload[off:])
	msg := Message{
		Proto:    trace.L7DNS,
		StreamID: uint64(id),
		Resource: name,
		Method:   dnsTypes[qtype],
		TotalLen: len(payload),
	}
	if msg.Method == "" {
		msg.Method = "TYPE?"
	}
	if flags&0x8000 == 0 {
		msg.Type = trace.MsgRequest
	} else {
		msg.Type = trace.MsgResponse
		rcode := int32(flags & 0xF)
		msg.Code = rcode
		if rcode == 0 {
			msg.Status = "ok"
		} else {
			msg.Status = "error"
		}
	}
	return msg, nil
}

// EncodeDNSQuery builds a one-question query.
func EncodeDNSQuery(id uint16, name string, qtype uint16) []byte {
	b := make([]byte, 12, 12+len(name)+6)
	be := binary.BigEndian
	be.PutUint16(b[0:], id)
	be.PutUint16(b[4:], 1) // QDCOUNT
	b = appendDNSName(b, name)
	var t [4]byte
	be.PutUint16(t[0:], qtype)
	be.PutUint16(t[2:], 1) // IN
	return append(b, t[:]...)
}

// EncodeDNSResponse builds a response carrying rcode and ancount synthetic
// answers (answer bodies are zero-filled placeholders).
func EncodeDNSResponse(id uint16, name string, qtype uint16, rcode uint8, ancount int) []byte {
	b := make([]byte, 12, 64)
	be := binary.BigEndian
	be.PutUint16(b[0:], id)
	be.PutUint16(b[2:], 0x8000|uint16(rcode))
	be.PutUint16(b[4:], 1)
	be.PutUint16(b[6:], uint16(ancount))
	b = appendDNSName(b, name)
	var t [4]byte
	be.PutUint16(t[0:], qtype)
	be.PutUint16(t[2:], 1)
	b = append(b, t[:]...)
	for i := 0; i < ancount; i++ {
		b = append(b, make([]byte, 16)...) // placeholder RR
	}
	return b
}

func appendDNSName(b []byte, name string) []byte {
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			continue
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

package protocols

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"deepflow/internal/trace"
)

// RedisCodec implements the RESP wire protocol (paper reference [114]).
// RESP is a pipeline protocol: responses arrive in request order.
type RedisCodec struct{}

// Proto implements Codec.
func (RedisCodec) Proto() trace.L7Proto { return trace.L7Redis }

// Traits implements TraitedCodec.
func (RedisCodec) Traits() Traits {
	return Traits{FirstBytes: []byte{'*', '+', '-', ':', '$'}, MinLen: 4}
}

// ParseHeader implements HeaderParser: the RESP type byte alone classifies
// the message and its status.
func (RedisCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 4 {
		return HeaderInfo{}, ErrShort
	}
	hi := HeaderInfo{TotalLen: len(payload)}
	switch payload[0] {
	case '*':
		hi.Type = trace.MsgRequest
	case '+', ':':
		hi.Type = trace.MsgResponse
		hi.Status = "ok"
	case '$':
		hi.Type = trace.MsgResponse
		hi.Status = "ok"
		if bytes.HasPrefix(payload, []byte("$-1")) {
			hi.Code = -1 // nil reply
		}
	case '-':
		hi.Type = trace.MsgResponse
		hi.Status = "error"
		hi.Code = 1
	default:
		return HeaderInfo{}, errMalformed(trace.L7Redis, "bad type byte")
	}
	return hi, nil
}

// Infer implements Codec.
func (RedisCodec) Infer(payload []byte) bool {
	if len(payload) < 4 {
		return false
	}
	switch payload[0] {
	case '*', '+', '-', ':', '$':
	default:
		return false
	}
	return bytes.Contains(payload[:min(len(payload), 16)], []byte("\r\n"))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Parse implements Codec.
func (RedisCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 4 {
		return Message{}, ErrShort
	}
	msg := Message{Proto: trace.L7Redis, TotalLen: len(payload)}
	switch payload[0] {
	case '*': // array => command (request)
		parts := splitRESP(payload)
		if len(parts) == 0 {
			return Message{}, errMalformed(trace.L7Redis, "empty command array")
		}
		msg.Type = trace.MsgRequest
		msg.Method = strings.ToUpper(parts[0])
		if len(parts) > 1 {
			msg.Resource = parts[1]
		}
	case '+': // simple string
		msg.Type = trace.MsgResponse
		msg.Status = "ok"
	case ':': // integer
		msg.Type = trace.MsgResponse
		msg.Status = "ok"
	case '$': // bulk string
		msg.Type = trace.MsgResponse
		msg.Status = "ok"
		if bytes.HasPrefix(payload, []byte("$-1")) {
			msg.Code = -1 // nil reply
		}
	case '-': // error
		msg.Type = trace.MsgResponse
		msg.Status = "error"
		msg.Code = 1
		line, _, _ := bytes.Cut(payload[1:], []byte("\r\n"))
		msg.Resource = string(line)
	default:
		return Message{}, errMalformed(trace.L7Redis, "bad type byte")
	}
	return msg, nil
}

// splitRESP extracts bulk strings from a RESP array payload.
func splitRESP(payload []byte) []string {
	lines := bytes.Split(payload, []byte("\r\n"))
	var out []string
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) > 0 && lines[i][0] == '$' && i+1 < len(lines) {
			out = append(out, string(lines[i+1]))
			i++
		}
	}
	return out
}

// EncodeRedisCommand builds a RESP command array, e.g. ("GET", "user:1").
func EncodeRedisCommand(args ...string) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return b.Bytes()
}

// EncodeRedisReply builds a bulk-string reply of the given byte size, or an
// error reply when errMsg is non-empty.
func EncodeRedisReply(size int, errMsg string) []byte {
	if errMsg != "" {
		return []byte("-ERR " + errMsg + "\r\n")
	}
	body := strings.Repeat("x", size)
	return []byte("$" + strconv.Itoa(size) + "\r\n" + body + "\r\n")
}

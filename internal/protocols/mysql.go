package protocols

import (
	"encoding/binary"
	"strings"

	"deepflow/internal/trace"
)

// MySQLCodec implements the MySQL client/server packet framing (paper
// reference [106]): a 3-byte little-endian length, a sequence byte, then
// the command or response payload. Pipeline protocol.
type MySQLCodec struct{}

// Proto implements Codec.
func (MySQLCodec) Proto() trace.L7Proto { return trace.L7MySQL }

// MySQL command bytes the codec understands.
const (
	mysqlComQuery       = 0x03
	mysqlComStmtPrepare = 0x16
	mysqlComStmtExecute = 0x17
	mysqlComQuit        = 0x01
	mysqlComPing        = 0x0E
	mysqlOKByte         = 0x00
	mysqlERRByte        = 0xFF
	mysqlEOFByte        = 0xFE
)

// Traits implements TraitedCodec. The 3-byte little-endian length can put
// any value in the first byte, so MySQL is probed on every first byte.
func (MySQLCodec) Traits() Traits {
	return Traits{MinLen: 5}
}

// ParseHeader implements HeaderParser: sequence byte classifies the
// message, the first body byte classifies the response.
func (MySQLCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 5 {
		return HeaderInfo{}, ErrShort
	}
	plen := int(payload[0]) | int(payload[1])<<8 | int(payload[2])<<16
	hi := HeaderInfo{TotalLen: plen + 4}
	if payload[3] == 0 {
		hi.Type = trace.MsgRequest
		return hi, nil
	}
	hi.Type = trace.MsgResponse
	switch payload[4] {
	case mysqlOKByte, mysqlEOFByte:
		hi.Status = "ok"
	case mysqlERRByte:
		hi.Status = "error"
		if len(payload) >= 7 {
			hi.Code = int32(binary.LittleEndian.Uint16(payload[5:]))
		}
	default:
		// Result set header: treat as OK data.
		hi.Status = "ok"
	}
	return hi, nil
}

// Infer implements Codec.
func (MySQLCodec) Infer(payload []byte) bool {
	if len(payload) < 5 {
		return false
	}
	plen := int(payload[0]) | int(payload[1])<<8 | int(payload[2])<<16
	if plen == 0 || plen+4 != len(payload) {
		return false
	}
	seq := payload[3]
	first := payload[4]
	if seq == 0 {
		switch first {
		case mysqlComQuery, mysqlComStmtPrepare, mysqlComStmtExecute, mysqlComQuit, mysqlComPing:
			return true
		}
		return false
	}
	return first == mysqlOKByte || first == mysqlERRByte || first == mysqlEOFByte
}

// Parse implements Codec.
func (MySQLCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 5 {
		return Message{}, ErrShort
	}
	plen := int(payload[0]) | int(payload[1])<<8 | int(payload[2])<<16
	seq := payload[3]
	body := payload[4:]
	msg := Message{Proto: trace.L7MySQL, TotalLen: plen + 4}
	if seq == 0 {
		msg.Type = trace.MsgRequest
		switch body[0] {
		case mysqlComQuery:
			msg.Method = "COM_QUERY"
			sql := string(body[1:])
			msg.Resource = firstSQLWords(sql)
		case mysqlComStmtPrepare:
			msg.Method = "COM_STMT_PREPARE"
			msg.Resource = firstSQLWords(string(body[1:]))
		case mysqlComStmtExecute:
			msg.Method = "COM_STMT_EXECUTE"
		case mysqlComPing:
			msg.Method = "COM_PING"
		case mysqlComQuit:
			msg.Method = "COM_QUIT"
		default:
			return Message{}, errMalformed(trace.L7MySQL, "unknown command")
		}
		return msg, nil
	}
	msg.Type = trace.MsgResponse
	switch body[0] {
	case mysqlOKByte, mysqlEOFByte:
		msg.Status = "ok"
	case mysqlERRByte:
		msg.Status = "error"
		if len(body) >= 3 {
			msg.Code = int32(binary.LittleEndian.Uint16(body[1:]))
		}
	default:
		// Result set header: treat as OK data.
		msg.Status = "ok"
	}
	return msg, nil
}

// firstSQLWords returns a short normalized fragment of the statement.
func firstSQLWords(sql string) string {
	sql = strings.TrimSpace(sql)
	words := strings.Fields(sql)
	if len(words) > 4 {
		words = words[:4]
	}
	return strings.Join(words, " ")
}

// EncodeMySQLQuery builds a COM_QUERY packet (sequence 0).
func EncodeMySQLQuery(sql string) []byte {
	body := append([]byte{mysqlComQuery}, sql...)
	return encodeMySQLPacket(0, body)
}

// EncodeMySQLOK builds an OK response (sequence 1) with padding rows bytes.
func EncodeMySQLOK(padding int) []byte {
	body := append([]byte{mysqlOKByte}, make([]byte, 4+padding)...)
	return encodeMySQLPacket(1, body)
}

// EncodeMySQLErr builds an ERR response with the given error code.
func EncodeMySQLErr(code uint16) []byte {
	body := make([]byte, 3)
	body[0] = mysqlERRByte
	binary.LittleEndian.PutUint16(body[1:], code)
	return encodeMySQLPacket(1, body)
}

func encodeMySQLPacket(seq byte, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = byte(len(body))
	out[1] = byte(len(body) >> 8)
	out[2] = byte(len(body) >> 16)
	out[3] = seq
	copy(out[4:], body)
	return out
}

package protocols

import (
	"sync"

	"deepflow/internal/trace"
)

// Traits is a codec's self-description for the registration table. The
// dispatch layer never hardwires per-protocol knowledge: everything it
// needs — how responses pair with requests, which first bytes can begin a
// message, the minimum parseable header — is declared here by the codec.
type Traits struct {
	// Parallel marks protocols that multiplex messages on one connection
	// (responses matched by stream ID); false means pipeline matching
	// (responses matched in FIFO order) — paper §3.3.1.
	Parallel bool

	// FirstBytes lists every byte value that can begin a message of this
	// protocol. Inference consults only codecs whose set contains the
	// payload's first byte, so strongly-magic'd binary protocols are
	// probed by a single table lookup. nil means any byte (the codec is
	// probed on every payload, in priority order).
	FirstBytes []byte

	// MinLen is the smallest payload that can possibly carry a message
	// header; shorter payloads skip this codec's Infer entirely.
	MinLen int

	// RespHeaders marks protocols whose responses may carry association
	// headers (X-Request-ID on an HTTP reverse-proxy reply). Their
	// responses need a full header parse to preserve span association, so
	// the agent keeps them on the slow path even when a lightweight
	// header parser exists.
	RespHeaders bool
}

// TraitedCodec is a codec that describes itself. Builtin codecs all
// implement it; user codecs that don't get zero-value traits (pipeline
// matching, probed on any first byte) — exactly the pre-table behavior.
type TraitedCodec interface {
	Codec
	Traits() Traits
}

// HeaderInfo is the lightweight result of ParseHeader: just enough to
// account a message on the agent's fast path — type, stream correlation,
// status, and total length for continuation tracking. No resource strings,
// no header maps, no allocation.
type HeaderInfo struct {
	Type     trace.MessageType
	StreamID uint64
	Code     int32
	Status   string // "ok" | "error"
	TotalLen int
}

// HeaderParser is the optional fast-path face of a codec. ParseHeader must
// agree with Parse: for any payload where it returns a response HeaderInfo,
// Parse must succeed and yield the same Type/StreamID/Code/Status/TotalLen.
// (The agent's fast-path/slow-path equivalence test pins this contract.)
type HeaderParser interface {
	ParseHeader(payload []byte) (HeaderInfo, error)
}

// Entry is one registered codec with its resolved traits.
type Entry struct {
	Codec  Codec
	Traits Traits

	// Header is the codec's fast-path parser, nil when the codec doesn't
	// implement HeaderParser or when its responses may carry association
	// headers (Traits.RespHeaders).
	Header HeaderParser
}

// Table is a codec registration table. Inference priority is registration
// order with user codecs ahead of builtins; all dispatch structures
// (first-byte probe lists, by-proto index, codec list) are derived once at
// registration time, so the hot-path lookups allocate nothing.
type Table struct {
	entries []*Entry // user entries first, then builtins, in priority order
	userEnd int      // entries[:userEnd] are user-registered

	byProto map[trace.L7Proto]*Entry
	codecs  []Codec

	// probe[b] lists, in priority order, the entries whose FirstBytes
	// contain b (or are nil). Infer walks exactly this list.
	probe [256][]*Entry
}

// builtinCodecs is the builtin priority order: binary protocols with
// strong magic first, permissive text protocols last.
func builtinCodecs() []TraitedCodec {
	return []TraitedCodec{
		DubboCodec{},
		HTTP2Codec{},
		GRPCCodec{},
		TLSCodec{},
		AMQPCodec{},
		PostgresCodec{},
		MySQLCodec{},
		KafkaCodec{},
		MQTTCodec{},
		DNSCodec{},
		RedisCodec{},
		HTTPCodec{},
	}
}

// NewTable builds a table holding the builtin codecs plus any user codecs,
// which take inference priority over builtins (they are probed first, as
// ExtraCodecs always were).
func NewTable(extra ...Codec) *Table {
	t := &Table{}
	for _, c := range extra {
		t.insert(c, true)
	}
	for _, c := range builtinCodecs() {
		t.insert(c, false)
	}
	t.rebuild()
	return t
}

// Register adds a user codec to the table, behind previously registered
// user codecs but ahead of every builtin. This is the same API the agent's
// ExtraCodecs configuration feeds; paper §3.3.1's "optional user-supplied
// protocol specifications".
func (t *Table) Register(c Codec) {
	t.insert(c, true)
	t.rebuild()
}

// insert places a codec at the end of the user or builtin section.
func (t *Table) insert(c Codec, user bool) {
	e := &Entry{Codec: c}
	if tc, ok := c.(TraitedCodec); ok {
		e.Traits = tc.Traits()
	}
	if hp, ok := c.(HeaderParser); ok && !e.Traits.RespHeaders {
		e.Header = hp
	}
	if user {
		t.entries = append(t.entries, nil)
		copy(t.entries[t.userEnd+1:], t.entries[t.userEnd:])
		t.entries[t.userEnd] = e
		t.userEnd++
	} else {
		t.entries = append(t.entries, e)
	}
}

// rebuild derives the dispatch structures from the entry list.
func (t *Table) rebuild() {
	t.byProto = make(map[trace.L7Proto]*Entry, len(t.entries))
	t.codecs = make([]Codec, len(t.entries))
	for b := range t.probe {
		t.probe[b] = nil
	}
	for i, e := range t.entries {
		t.codecs[i] = e.Codec
		if _, dup := t.byProto[e.Codec.Proto()]; !dup {
			t.byProto[e.Codec.Proto()] = e
		}
		if e.Traits.FirstBytes == nil {
			for b := range t.probe {
				t.probe[b] = append(t.probe[b], e)
			}
			continue
		}
		for _, b := range e.Traits.FirstBytes {
			t.probe[b] = append(t.probe[b], e)
		}
	}
}

// InferEntry runs one-shot protocol inference: a single first-byte table
// lookup selects the candidate codecs, probed in priority order. Returns
// nil when no codec claims the payload.
func (t *Table) InferEntry(payload []byte) *Entry {
	if len(payload) == 0 {
		return nil
	}
	for _, e := range t.probe[payload[0]] {
		if len(payload) < e.Traits.MinLen {
			continue
		}
		if e.Codec.Infer(payload) {
			return e
		}
	}
	return nil
}

// Infer is InferEntry returning just the codec.
func (t *Table) Infer(payload []byte) Codec {
	if e := t.InferEntry(payload); e != nil {
		return e.Codec
	}
	return nil
}

// Lookup returns the entry for a protocol, or nil.
func (t *Table) Lookup(p trace.L7Proto) *Entry { return t.byProto[p] }

// Codecs returns the table's codecs in priority order. Callers must not
// mutate the returned slice; it is rebuilt only on Register.
func (t *Table) Codecs() []Codec { return t.codecs }

// defaultTable is the builtin-only table, built once on first use.
var (
	defaultOnce  sync.Once
	defaultTable *Table
)

// Default returns the shared builtin codec table.
func Default() *Table {
	defaultOnce.Do(func() { defaultTable = NewTable() })
	return defaultTable
}

// Registry is the ordered codec list used for inference, derived from the
// default table (built once — no per-call allocation). Callers must not
// mutate the returned slice.
func Registry() []Codec { return Default().Codecs() }

// Infer runs one-shot protocol inference, probing user codecs first and
// then the default table's first-byte dispatch, returning the matching
// codec or nil.
func Infer(payload []byte, extra []Codec) Codec {
	for _, c := range extra {
		if c.Infer(payload) {
			return c
		}
	}
	return Default().Infer(payload)
}

// ByProto returns the builtin codec for a protocol, or nil.
func ByProto(p trace.L7Proto) Codec {
	if e := Default().Lookup(p); e != nil {
		return e.Codec
	}
	return nil
}

// IsParallel reports whether the protocol multiplexes messages on one
// connection (responses matched by stream ID) rather than pipelining
// (responses matched in FIFO order) — paper §3.3.1, session aggregation.
// Derived from the codec's declared traits; unregistered protocols default
// to pipeline matching.
func IsParallel(p trace.L7Proto) bool {
	if e := Default().Lookup(p); e != nil {
		return e.Traits.Parallel
	}
	return false
}

package protocols

import (
	"encoding/binary"

	"deepflow/internal/trace"
)

// DubboCodec implements the Dubbo RPC framing (paper reference [36]):
// 0xdabb magic, a flag byte with a request bit, a status byte, a 64-bit
// request ID, and a length-prefixed body. Parallel protocol matched by
// request ID.
//
// Layout (big endian):
//
//	0:  u16 magic 0xdabb
//	2:  u8  flags (0x80 = request)
//	3:  u8  status (responses: 20 = OK)
//	4:  u64 request id
//	12: u32 body length
//	16: requests: u16 service len, service, u16 method len, method
type DubboCodec struct{}

// Proto implements Codec.
func (DubboCodec) Proto() trace.L7Proto { return trace.L7Dubbo }

const dubboMagic = 0xdabb

// DubboStatusOK is the OK response status.
const DubboStatusOK = 20

// Traits implements TraitedCodec.
func (DubboCodec) Traits() Traits {
	return Traits{Parallel: true, FirstBytes: []byte{0xda}, MinLen: 16}
}

// Infer implements Codec.
func (DubboCodec) Infer(payload []byte) bool {
	return len(payload) >= 16 && binary.BigEndian.Uint16(payload) == dubboMagic
}

// ParseHeader implements HeaderParser: type, request ID, and status from
// the fixed 16-byte header, nothing else.
func (DubboCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 16 {
		return HeaderInfo{}, ErrShort
	}
	be := binary.BigEndian
	if be.Uint16(payload) != dubboMagic {
		return HeaderInfo{}, errMalformed(trace.L7Dubbo, "bad magic")
	}
	hi := HeaderInfo{
		StreamID: be.Uint64(payload[4:]),
		TotalLen: 16 + int(be.Uint32(payload[12:])),
	}
	if payload[2]&0x80 != 0 {
		hi.Type = trace.MsgRequest
		return hi, nil
	}
	hi.Type = trace.MsgResponse
	status := payload[3]
	hi.Code = int32(status)
	if status == DubboStatusOK {
		hi.Status = "ok"
	} else {
		hi.Status = "error"
	}
	return hi, nil
}

// Parse implements Codec.
func (DubboCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 16 {
		return Message{}, ErrShort
	}
	be := binary.BigEndian
	if be.Uint16(payload) != dubboMagic {
		return Message{}, errMalformed(trace.L7Dubbo, "bad magic")
	}
	flags := payload[2]
	status := payload[3]
	msg := Message{
		Proto:    trace.L7Dubbo,
		StreamID: be.Uint64(payload[4:]),
		TotalLen: 16 + int(be.Uint32(payload[12:])),
	}
	if flags&0x80 != 0 {
		msg.Type = trace.MsgRequest
		p := 16
		if p+2 > len(payload) {
			return msg, nil
		}
		sl := int(be.Uint16(payload[p:]))
		p += 2
		if p+sl > len(payload) {
			return Message{}, errMalformed(trace.L7Dubbo, "truncated service")
		}
		msg.Resource = string(payload[p : p+sl])
		p += sl
		if p+2 <= len(payload) {
			ml := int(be.Uint16(payload[p:]))
			p += 2
			if p+ml <= len(payload) {
				msg.Method = string(payload[p : p+ml])
			}
		}
	} else {
		msg.Type = trace.MsgResponse
		msg.Code = int32(status)
		if status == DubboStatusOK {
			msg.Status = "ok"
		} else {
			msg.Status = "error"
		}
	}
	return msg, nil
}

// EncodeDubboRequest builds a request frame.
func EncodeDubboRequest(id uint64, service, method string, bodyLen int) []byte {
	be := binary.BigEndian
	body := make([]byte, 2+len(service)+2+len(method)+bodyLen)
	be.PutUint16(body[0:], uint16(len(service)))
	copy(body[2:], service)
	off := 2 + len(service)
	be.PutUint16(body[off:], uint16(len(method)))
	copy(body[off+2:], method)
	out := make([]byte, 16+len(body))
	be.PutUint16(out[0:], dubboMagic)
	out[2] = 0x80
	be.PutUint64(out[4:], id)
	be.PutUint32(out[12:], uint32(len(body)))
	copy(out[16:], body)
	return out
}

// EncodeDubboResponse builds a response frame with the given status.
func EncodeDubboResponse(id uint64, status uint8, bodyLen int) []byte {
	be := binary.BigEndian
	out := make([]byte, 16+bodyLen)
	be.PutUint16(out[0:], dubboMagic)
	out[3] = status
	be.PutUint64(out[4:], id)
	be.PutUint32(out[12:], uint32(bodyLen))
	return out
}

package protocols

import (
	"bytes"
	"encoding/binary"
	"sort"

	"deepflow/internal/trace"
)

// GRPCCodec implements a framed gRPC-over-HTTP/2-style protocol: HEADERS
// frames with stream identifiers carrying a full-method path on requests
// and a grpc-status trailer byte on responses. Like HTTP/2 it multiplexes
// streams on one connection (parallel protocol), but unlike plain HTTP its
// responses never carry proxy association headers — status lives in the
// fixed trailer byte — so responses are fast-path eligible via ParseHeader.
//
// Frame layout (big endian):
//
//	0:  magic "gh2\x00" (4 bytes)
//	4:  u8  frame type (1 = request HEADERS, 2 = response HEADERS+trailers)
//	5:  u32 stream id
//	9:  u8  grpc-status (responses; 0 = OK)
//	10: u32 total message length (frame + body)
//	14: u8  header count, then repeated: u8 klen, k, u8 vlen, v
//	then for requests: u16 plen, full-method path "/pkg.Service/Method"
type GRPCCodec struct{}

var grpcMagic = []byte("gh2\x00")

// GRPC status codes the workloads use.
const (
	GRPCStatusOK          = 0
	GRPCStatusNotFound    = 5
	GRPCStatusInternal    = 13
	GRPCStatusUnavailable = 14
)

// Proto implements Codec.
func (GRPCCodec) Proto() trace.L7Proto { return trace.L7GRPC }

// Traits implements TraitedCodec.
func (GRPCCodec) Traits() Traits {
	return Traits{Parallel: true, FirstBytes: []byte{'g'}, MinLen: 15}
}

// Infer implements Codec.
func (GRPCCodec) Infer(payload []byte) bool {
	return len(payload) >= 15 && bytes.HasPrefix(payload, grpcMagic)
}

// ParseHeader implements HeaderParser: frame type, stream ID, and
// grpc-status from fixed offsets — no header-block or path decoding.
func (GRPCCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 15 {
		return HeaderInfo{}, ErrShort
	}
	if !bytes.HasPrefix(payload, grpcMagic) {
		return HeaderInfo{}, errMalformed(trace.L7GRPC, "bad magic")
	}
	be := binary.BigEndian
	hi := HeaderInfo{
		StreamID: uint64(be.Uint32(payload[5:])),
		TotalLen: int(be.Uint32(payload[10:])),
	}
	switch payload[4] {
	case 1:
		hi.Type = trace.MsgRequest
	case 2:
		hi.Type = trace.MsgResponse
		hi.Code = int32(payload[9])
		if hi.Code == GRPCStatusOK {
			hi.Status = "ok"
		} else {
			hi.Status = "error"
		}
		// Bounds-check the header block without decoding it, so a
		// response ParseHeader errors exactly where Parse would — the
		// fast-path/slow-path equivalence contract.
		if err := grpcCheckHeaders(payload); err != nil {
			return HeaderInfo{}, err
		}
	default:
		return HeaderInfo{}, errMalformed(trace.L7GRPC, "unknown frame type")
	}
	return hi, nil
}

// grpcCheckHeaders walks the header block validating lengths only — no
// string or map allocation.
func grpcCheckHeaders(payload []byte) error {
	p := 14
	hc := int(payload[p])
	p++
	for i := 0; i < hc; i++ {
		if p >= len(payload) {
			return errMalformed(trace.L7GRPC, "truncated headers")
		}
		kl := int(payload[p])
		p++
		if p+kl > len(payload) {
			return errMalformed(trace.L7GRPC, "truncated header key")
		}
		p += kl
		if p >= len(payload) {
			return errMalformed(trace.L7GRPC, "truncated header value len")
		}
		vl := int(payload[p])
		p++
		if p+vl > len(payload) {
			return errMalformed(trace.L7GRPC, "truncated header value")
		}
		p += vl
	}
	return nil
}

// Parse implements Codec.
func (GRPCCodec) Parse(payload []byte) (Message, error) {
	hi, err := GRPCCodec{}.ParseHeader(payload)
	if err != nil {
		return Message{}, err
	}
	msg := Message{
		Proto:    trace.L7GRPC,
		Type:     hi.Type,
		StreamID: hi.StreamID,
		Code:     hi.Code,
		Status:   hi.Status,
		TotalLen: hi.TotalLen,
		Headers:  map[string]string{},
	}
	p := 14
	hc := int(payload[p])
	p++
	for i := 0; i < hc; i++ {
		if p >= len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "truncated headers")
		}
		kl := int(payload[p])
		p++
		if p+kl > len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "truncated header key")
		}
		k := string(payload[p : p+kl])
		p += kl
		if p >= len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "truncated header value len")
		}
		vl := int(payload[p])
		p++
		if p+vl > len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "truncated header value")
		}
		msg.Headers[k] = string(payload[p : p+vl])
		p += vl
	}
	if msg.Type == trace.MsgRequest {
		// gRPC calls are always HTTP POST; the full-method path is the
		// resource ("/pkg.Service/Method").
		msg.Method = "POST"
		if p+2 > len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "missing path len")
		}
		pl := int(binary.BigEndian.Uint16(payload[p:]))
		p += 2
		if p+pl > len(payload) {
			return Message{}, errMalformed(trace.L7GRPC, "truncated path")
		}
		msg.Resource = string(payload[p : p+pl])
	}
	return msg, nil
}

func encodeGRPC(typ byte, stream uint32, status uint8, headers map[string]string, path string, bodyLen int) []byte {
	var b bytes.Buffer
	b.Write(grpcMagic)
	b.WriteByte(typ)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], stream)
	b.Write(tmp[:4])
	b.WriteByte(status)
	lenPos := b.Len()
	b.Write([]byte{0, 0, 0, 0}) // total length placeholder
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte(byte(len(keys)))
	for _, k := range keys {
		b.WriteByte(byte(len(k)))
		b.WriteString(k)
		b.WriteByte(byte(len(headers[k])))
		b.WriteString(headers[k])
	}
	if typ == 1 {
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(path)))
		b.Write(tmp[:2])
		b.WriteString(path)
	}
	b.Write(make([]byte, bodyLen))
	out := b.Bytes()
	binary.BigEndian.PutUint32(out[lenPos:], uint32(len(out)))
	return out
}

// EncodeGRPCRequest builds a request HEADERS frame on the given stream for
// the full-method path; headers carry propagation metadata (traceparent,
// x-request-id).
func EncodeGRPCRequest(stream uint32, path string, headers map[string]string, bodyLen int) []byte {
	return encodeGRPC(1, stream, 0, headers, path, bodyLen)
}

// EncodeGRPCResponse builds a response frame carrying the grpc-status
// trailer plus the standard transport headers every real gRPC response
// ships (content-type, encoding negotiation). Responses deliberately carry
// no association headers — status and stream live in fixed fields — which
// is what makes them fast-path eligible.
func EncodeGRPCResponse(stream uint32, status uint8, bodyLen int) []byte {
	headers := map[string]string{
		":status":              "200",
		"content-type":         "application/grpc",
		"grpc-encoding":        "identity",
		"grpc-accept-encoding": "identity, deflate, gzip",
	}
	if status != GRPCStatusOK {
		headers["grpc-message"] = grpcStatusText(status)
	}
	return encodeGRPC(2, stream, status, headers, "", bodyLen)
}

func grpcStatusText(status uint8) string {
	switch status {
	case GRPCStatusNotFound:
		return "not found"
	case GRPCStatusInternal:
		return "internal"
	case GRPCStatusUnavailable:
		return "unavailable"
	default:
		return "error"
	}
}

package protocols

import (
	"encoding/binary"

	"deepflow/internal/trace"
)

// KafkaCodec implements a Kafka-style binary RPC (paper reference [35]):
// size-prefixed frames with API keys and correlation IDs. Parallel protocol
// matched by correlation ID.
//
// Frame layout (big endian, like Kafka):
//
//	0: u32 size (bytes after this field)
//	4: u8  kind (0 = request, 1 = response)
//	requests:  5: i16 api key, 7: i16 api version, 9: i32 correlation id,
//	           13: u16 topic len, topic, payload...
//	responses: 5: i32 correlation id, 9: i16 error code, payload...
type KafkaCodec struct{}

// Proto implements Codec.
func (KafkaCodec) Proto() trace.L7Proto { return trace.L7Kafka }

// Kafka API keys the workloads use.
const (
	KafkaProduce  = 0
	KafkaFetch    = 1
	KafkaMetadata = 3
)

var kafkaAPINames = map[int16]string{KafkaProduce: "Produce", KafkaFetch: "Fetch", KafkaMetadata: "Metadata"}

// Traits implements TraitedCodec. The big-endian frame size can put any
// value in the first byte, so Kafka is probed on every first byte.
func (KafkaCodec) Traits() Traits {
	return Traits{Parallel: true, MinLen: 11}
}

// ParseHeader implements HeaderParser: frame kind, correlation ID, and
// error code from fixed offsets.
func (KafkaCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 11 {
		return HeaderInfo{}, ErrShort
	}
	be := binary.BigEndian
	hi := HeaderInfo{TotalLen: int(be.Uint32(payload[0:])) + 4}
	switch payload[4] {
	case 0:
		hi.Type = trace.MsgRequest
		return hi, nil
	case 1:
		hi.Type = trace.MsgResponse
		hi.StreamID = uint64(be.Uint32(payload[5:]))
		ec := int16(be.Uint16(payload[9:]))
		hi.Code = int32(ec)
		if ec == 0 {
			hi.Status = "ok"
		} else {
			hi.Status = "error"
		}
		return hi, nil
	default:
		return HeaderInfo{}, errMalformed(trace.L7Kafka, "bad frame kind")
	}
}

// Infer implements Codec.
func (KafkaCodec) Infer(payload []byte) bool {
	if len(payload) < 11 {
		return false
	}
	be := binary.BigEndian
	size := be.Uint32(payload[0:])
	if int(size)+4 != len(payload) {
		return false
	}
	switch payload[4] {
	case 0:
		api := int16(be.Uint16(payload[5:]))
		_, known := kafkaAPINames[api]
		return known
	case 1:
		return true
	}
	return false
}

// Parse implements Codec.
func (KafkaCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 11 {
		return Message{}, ErrShort
	}
	be := binary.BigEndian
	size := int(be.Uint32(payload[0:]))
	msg := Message{Proto: trace.L7Kafka, TotalLen: size + 4}
	switch payload[4] {
	case 0:
		if len(payload) < 15 {
			return Message{}, ErrShort
		}
		msg.Type = trace.MsgRequest
		api := int16(be.Uint16(payload[5:]))
		name, ok := kafkaAPINames[api]
		if !ok {
			return Message{}, errMalformed(trace.L7Kafka, "unknown api key")
		}
		msg.Method = name
		msg.StreamID = uint64(be.Uint32(payload[9:]))
		tl := int(be.Uint16(payload[13:]))
		if 15+tl <= len(payload) {
			msg.Resource = string(payload[15 : 15+tl])
		}
	case 1:
		msg.Type = trace.MsgResponse
		msg.StreamID = uint64(be.Uint32(payload[5:]))
		ec := int16(be.Uint16(payload[9:]))
		msg.Code = int32(ec)
		if ec == 0 {
			msg.Status = "ok"
		} else {
			msg.Status = "error"
		}
	default:
		return Message{}, errMalformed(trace.L7Kafka, "bad frame kind")
	}
	return msg, nil
}

// EncodeKafkaRequest builds a request frame.
func EncodeKafkaRequest(api int16, correlation uint32, topic string, bodyLen int) []byte {
	be := binary.BigEndian
	out := make([]byte, 15+len(topic)+bodyLen)
	be.PutUint32(out[0:], uint32(len(out)-4))
	out[4] = 0
	be.PutUint16(out[5:], uint16(api))
	be.PutUint16(out[7:], 2) // api version
	be.PutUint32(out[9:], correlation)
	be.PutUint16(out[13:], uint16(len(topic)))
	copy(out[15:], topic)
	return out
}

// EncodeKafkaResponse builds a response frame.
func EncodeKafkaResponse(correlation uint32, errCode int16, bodyLen int) []byte {
	be := binary.BigEndian
	out := make([]byte, 11+bodyLen)
	be.PutUint32(out[0:], uint32(len(out)-4))
	out[4] = 1
	be.PutUint32(out[5:], correlation)
	be.PutUint16(out[9:], uint16(errCode))
	return out
}

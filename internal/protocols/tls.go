package protocols

import "deepflow/internal/trace"

// TLSCodec recognizes TLS record framing so encrypted flows are classified
// rather than repeatedly mis-inferred. DeepFlow cannot parse TLS payloads
// from syscalls; plaintext for such flows comes from the ssl_read/ssl_write
// uprobe extension hooks (paper §3.2.1), which feed a separate flow state.
type TLSCodec struct{}

// Proto implements Codec.
func (TLSCodec) Proto() trace.L7Proto { return trace.L7TLS }

// Traits implements TraitedCodec.
func (TLSCodec) Traits() Traits {
	return Traits{FirstBytes: []byte{20, 21, 22, 23}, MinLen: 5}
}

// Infer implements Codec: a TLS record header is content-type 20–23
// followed by version 0x03 0x01..0x04.
func (TLSCodec) Infer(payload []byte) bool {
	if len(payload) < 5 {
		return false
	}
	ct := payload[0]
	return ct >= 20 && ct <= 23 && payload[1] == 0x03 && payload[2] <= 0x04
}

// Parse implements Codec; TLS payloads carry no parseable L7 semantics.
func (TLSCodec) Parse(payload []byte) (Message, error) {
	return Message{}, errMalformed(trace.L7TLS, "encrypted payload")
}

package protocols

import (
	"bytes"
	"encoding/binary"
	"sort"

	"deepflow/internal/trace"
)

// HTTP2Codec implements a framed HTTP/2-style protocol: binary frames with
// stream identifiers, so multiple requests multiplex on one connection
// (parallel protocol — paper §3.3.1 cites HTTP/2 stream identifiers as the
// embedded distinguishing attribute).
//
// Frame layout (little endian):
//
//	0:  magic "h2f\x00" (4 bytes)
//	4:  u8  frame type (1 = request HEADERS, 2 = response HEADERS)
//	5:  u32 stream id
//	9:  u16 status code (responses)
//	11: u32 total message length (frame + body)
//	15: u8  header count, then repeated: u8 klen, k, u8 vlen, v
//	then for requests: u8 mlen, method, u16 plen, path
type HTTP2Codec struct{}

var http2Magic = []byte("h2f\x00")

// Proto implements Codec.
func (HTTP2Codec) Proto() trace.L7Proto { return trace.L7HTTP2 }

// Traits implements TraitedCodec. Responses can carry proxy association
// headers (X-Request-ID), so they stay on the agent's slow path.
func (HTTP2Codec) Traits() Traits {
	return Traits{Parallel: true, FirstBytes: []byte{'h'}, MinLen: 16, RespHeaders: true}
}

// Infer implements Codec.
func (HTTP2Codec) Infer(payload []byte) bool {
	return bytes.HasPrefix(payload, http2Magic)
}

// Parse implements Codec.
func (HTTP2Codec) Parse(payload []byte) (Message, error) {
	if len(payload) < 16 {
		return Message{}, ErrShort
	}
	if !bytes.HasPrefix(payload, http2Magic) {
		return Message{}, errMalformed(trace.L7HTTP2, "bad magic")
	}
	le := binary.LittleEndian
	typ := payload[4]
	msg := Message{
		Proto:    trace.L7HTTP2,
		StreamID: uint64(le.Uint32(payload[5:])),
		TotalLen: int(le.Uint32(payload[11:])),
		Headers:  map[string]string{},
	}
	p := 15
	if p >= len(payload) {
		return Message{}, ErrShort
	}
	hc := int(payload[p])
	p++
	for i := 0; i < hc; i++ {
		if p >= len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated headers")
		}
		kl := int(payload[p])
		p++
		if p+kl > len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated header key")
		}
		k := string(payload[p : p+kl])
		p += kl
		if p >= len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated header value len")
		}
		vl := int(payload[p])
		p++
		if p+vl > len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated header value")
		}
		msg.Headers[k] = string(payload[p : p+vl])
		p += vl
	}
	switch typ {
	case 1:
		msg.Type = trace.MsgRequest
		if p >= len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "missing method")
		}
		ml := int(payload[p])
		p++
		if p+ml > len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated method")
		}
		msg.Method = string(payload[p : p+ml])
		p += ml
		if p+2 > len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "missing path len")
		}
		pl := int(le.Uint16(payload[p:]))
		p += 2
		if p+pl > len(payload) {
			return Message{}, errMalformed(trace.L7HTTP2, "truncated path")
		}
		msg.Resource = string(payload[p : p+pl])
	case 2:
		msg.Type = trace.MsgResponse
		msg.Code = int32(le.Uint16(payload[9:]))
		if msg.Code >= 400 {
			msg.Status = "error"
		} else {
			msg.Status = "ok"
		}
	default:
		return Message{}, errMalformed(trace.L7HTTP2, "unknown frame type")
	}
	return msg, nil
}

func encodeHTTP2(typ byte, stream uint32, code uint16, headers map[string]string, method, path string, bodyLen int) []byte {
	var b bytes.Buffer
	b.Write(http2Magic)
	b.WriteByte(typ)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], stream)
	b.Write(tmp[:4])
	binary.LittleEndian.PutUint16(tmp[:2], code)
	b.Write(tmp[:2])
	lenPos := b.Len()
	b.Write([]byte{0, 0, 0, 0}) // total length placeholder
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte(byte(len(keys)))
	for _, k := range keys {
		b.WriteByte(byte(len(k)))
		b.WriteString(k)
		b.WriteByte(byte(len(headers[k])))
		b.WriteString(headers[k])
	}
	if typ == 1 {
		b.WriteByte(byte(len(method)))
		b.WriteString(method)
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(path)))
		b.Write(tmp[:2])
		b.WriteString(path)
	}
	b.Write(make([]byte, bodyLen))
	out := b.Bytes()
	binary.LittleEndian.PutUint32(out[lenPos:], uint32(len(out)))
	return out
}

// EncodeHTTP2Request builds a request frame on the given stream.
func EncodeHTTP2Request(stream uint32, method, path string, headers map[string]string, bodyLen int) []byte {
	return encodeHTTP2(1, stream, 0, headers, method, path, bodyLen)
}

// EncodeHTTP2Response builds a response frame on the given stream.
func EncodeHTTP2Response(stream uint32, code uint16, headers map[string]string, bodyLen int) []byte {
	return encodeHTTP2(2, stream, code, headers, "", "", bodyLen)
}

package protocols

import (
	"testing"

	"deepflow/internal/trace"
)

// corpus returns wire samples for every registered protocol: requests, OK
// responses, and error responses where the protocol has them.
func corpus() map[trace.L7Proto][][]byte {
	return map[trace.L7Proto][][]byte{
		trace.L7HTTP: {
			EncodeHTTPRequest("GET", "/x", map[string]string{"X-Request-Id": "r1"}, 0),
			EncodeHTTPResponse(200, nil, 4),
			EncodeHTTPResponse(503, nil, 0),
		},
		trace.L7HTTP2: {
			EncodeHTTP2Request(1, "GET", "/x", nil, 0),
			EncodeHTTP2Response(1, 200, nil, 0),
			EncodeHTTP2Response(3, 504, nil, 0),
		},
		trace.L7GRPC: {
			EncodeGRPCRequest(5, "/acme.Cart/AddItem", map[string]string{"traceparent": "00-a-b-01"}, 32),
			EncodeGRPCResponse(5, GRPCStatusOK, 16),
			EncodeGRPCResponse(7, GRPCStatusUnavailable, 0),
		},
		trace.L7DNS: {
			EncodeDNSQuery(7, "svc.local", 1),
			EncodeDNSResponse(7, "svc.local", 1, 0, 1),
			EncodeDNSResponse(9, "missing.local", 1, 3, 0),
		},
		trace.L7Redis: {
			EncodeRedisCommand("SET", "k", "v"),
			EncodeRedisReply(3, ""),
			EncodeRedisReply(0, "oops"),
		},
		trace.L7MySQL: {
			EncodeMySQLQuery("SELECT 1"),
			EncodeMySQLOK(0),
			EncodeMySQLErr(1146),
		},
		trace.L7Postgres: {
			EncodePostgresQuery("SELECT * FROM orders"),
			EncodePostgresComplete("SELECT 3", 0),
			EncodePostgresError("42P01", "relation does not exist"),
		},
		trace.L7Kafka: {
			EncodeKafkaRequest(KafkaFetch, 1, "t", 0),
			EncodeKafkaResponse(1, 0, 8),
			EncodeKafkaResponse(2, 7, 0),
		},
		trace.L7MQTT: {
			EncodeMQTTPublish("a/b", 10),
			EncodeMQTTPuback(),
		},
		trace.L7AMQP: {
			EncodeAMQPPublish(1, "orders", "created", 64),
			EncodeAMQPAck(1),
			EncodeAMQPClose(1, 312, "no route"),
		},
		trace.L7Dubbo: {
			EncodeDubboRequest(1, "Svc", "m", 0),
			EncodeDubboResponse(1, DubboStatusOK, 0),
			EncodeDubboResponse(2, 50, 0),
		},
	}
}

// TestCrossProtocolMatrix checks every registered codec's samples against
// all other codecs: the owner must claim its own samples, no
// higher-priority codec may claim them (so the owner wins by selectivity,
// not by luck), and full-table inference must return the owner.
func TestCrossProtocolMatrix(t *testing.T) {
	codecs := Registry()
	prio := map[trace.L7Proto]int{}
	for i, c := range codecs {
		prio[c.Proto()] = i
	}
	for proto, payloads := range corpus() {
		own, ok := prio[proto]
		if !ok {
			t.Fatalf("%v not in registry", proto)
		}
		for i, payload := range payloads {
			if !codecs[own].Infer(payload) {
				t.Errorf("%v sample %d: own codec rejects it", proto, i)
			}
			for j, other := range codecs {
				if j < own && other.Infer(payload) {
					t.Errorf("%v sample %d: higher-priority %v claims it",
						proto, i, other.Proto())
				}
			}
			got := Infer(payload, nil)
			if got == nil {
				t.Errorf("%v sample %d: no codec inferred", proto, i)
			} else if got.Proto() != proto {
				t.Errorf("%v sample %d inferred as %v", proto, i, got.Proto())
			}
		}
	}
}

// TestFirstByteDispatchEquivalence pins the probe-table optimization: for
// every corpus sample and a pile of garbage, first-byte dispatch must give
// exactly the same answer as a full linear scan in priority order.
func TestFirstByteDispatchEquivalence(t *testing.T) {
	table := Default()
	linear := func(payload []byte) Codec {
		for _, c := range table.Codecs() {
			if c.Infer(payload) {
				return c
			}
		}
		return nil
	}
	var inputs [][]byte
	for _, payloads := range corpus() {
		inputs = append(inputs, payloads...)
	}
	inputs = append(inputs,
		nil, []byte{}, []byte{0}, []byte{0xCE}, []byte("random text message"),
		[]byte("GET "), []byte{0x16, 0x03, 0x01, 0x00, 0x05, 1, 2, 3, 4, 5},
		[]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	for i, in := range inputs {
		fast, slow := table.Infer(in), linear(in)
		fp, sp := trace.L7Unknown, trace.L7Unknown
		if fast != nil {
			fp = fast.Proto()
		}
		if slow != nil {
			sp = slow.Proto()
		}
		if fp != sp {
			t.Errorf("input %d: dispatch=%v linear scan=%v", i, fp, sp)
		}
	}
}

// TestParseHeaderAgreesWithParse pins the fast-path contract exactly as
// the sessionizer consumes it. The fast path fires only when ParseHeader
// yields a response, so for responses the two parsers must agree in both
// directions: whenever ParseHeader classifies a payload as a response,
// Parse must succeed with identical stream/code/status/length (else the
// fast path would emit a span the slow path wouldn't, or a different
// one); and whenever Parse yields a response, ParseHeader must too (else
// the fast path silently degrades). Requests always take the slow path,
// so only the type classification has to agree there.
func TestParseHeaderAgreesWithParse(t *testing.T) {
	var inputs [][]byte
	for _, payloads := range corpus() {
		inputs = append(inputs, payloads...)
	}
	inputs = append(inputs, nil, []byte{}, []byte{0, 1, 2, 3}, []byte("garbage input here"))
	for _, c := range Registry() {
		hp, ok := c.(HeaderParser)
		if !ok {
			continue
		}
		for i, in := range inputs {
			hi, herr := hp.ParseHeader(in)
			msg, perr := c.Parse(in)
			if herr == nil && hi.Type == trace.MsgResponse {
				if perr != nil {
					t.Errorf("%v input %d: ParseHeader yields a response but Parse fails (%v)", c.Proto(), i, perr)
					continue
				}
				if hi.Type != msg.Type || hi.StreamID != msg.StreamID ||
					hi.Code != msg.Code || hi.Status != msg.Status || hi.TotalLen != msg.TotalLen {
					t.Errorf("%v input %d: ParseHeader %+v disagrees with Parse %+v", c.Proto(), i, hi, msg)
				}
				continue
			}
			if perr == nil && msg.Type == trace.MsgResponse {
				t.Errorf("%v input %d: Parse yields a response but ParseHeader missed it (%v, %+v)",
					c.Proto(), i, herr, hi)
			}
			if herr == nil && perr == nil && hi.Type != msg.Type {
				t.Errorf("%v input %d: type mismatch: ParseHeader %v, Parse %v", c.Proto(), i, hi.Type, msg.Type)
			}
		}
	}
}

// dummyCodec is a minimal user codec with no trait declaration.
type dummyCodec struct{ proto trace.L7Proto }

func (d dummyCodec) Proto() trace.L7Proto { return d.proto }
func (d dummyCodec) Infer(p []byte) bool {
	return len(p) >= 4 && p[0] == 0xF1 && p[1] == 0x99
}
func (d dummyCodec) Parse(p []byte) (Message, error) {
	if !(dummyCodec{}).Infer(p) {
		return Message{}, ErrShort
	}
	typ := trace.MsgRequest
	if p[2] == 1 {
		typ = trace.MsgResponse
	}
	return Message{Proto: d.proto, Type: typ, Status: "ok"}, nil
}

// TestRegisterUserCodec checks the Register API: a user codec with no
// Traits declaration is probed on any first byte, ahead of the builtins,
// and defaults to pipeline matching.
func TestRegisterUserCodec(t *testing.T) {
	const userProto = trace.L7Proto(200)
	table := NewTable()
	table.Register(dummyCodec{proto: userProto})

	sample := []byte{0xF1, 0x99, 0, 0}
	if c := table.Infer(sample); c == nil || c.Proto() != userProto {
		t.Fatalf("user codec not inferred: %v", c)
	}
	e := table.Lookup(userProto)
	if e == nil {
		t.Fatal("user codec not in by-proto index")
	}
	if e.Traits.Parallel {
		t.Error("zero-trait user codec must default to pipeline matching")
	}
	if e.Header != nil {
		t.Error("user codec without ParseHeader must not be fast-path eligible")
	}
	// Builtins still infer normally through the same table.
	if c := table.Infer(EncodeHTTPRequest("GET", "/", nil, 0)); c == nil || c.Proto() != trace.L7HTTP {
		t.Errorf("builtin inference broken after Register: %v", c)
	}
	// User codecs take priority: they are probed before every builtin.
	if got := table.Codecs()[0].Proto(); got != userProto {
		t.Errorf("user codec not first in priority order: %v", got)
	}
}

// TestDispatchAllocFree pins the satellite requirement: Registry, ByProto,
// IsParallel, and Infer must not allocate per call.
func TestDispatchAllocFree(t *testing.T) {
	req := EncodeKafkaRequest(KafkaProduce, 9, "t", 0)
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	Default() // build outside the measured region
	cases := map[string]func(){
		"Registry":   func() { Registry() },
		"ByProto":    func() { ByProto(trace.L7Kafka) },
		"IsParallel": func() { IsParallel(trace.L7DNS) },
		"Infer-hit":  func() { Infer(req, nil) },
		"Infer-miss": func() { Infer(garbage, nil) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(100, fn); n > 0 {
			t.Errorf("%s allocates %.1f objects per call", name, n)
		}
	}
}

// TestTraitsMatchDeclaredBehavior spot-checks the self-descriptions the
// dispatch layer now depends on.
func TestTraitsMatchDeclaredBehavior(t *testing.T) {
	parallel := []trace.L7Proto{trace.L7HTTP2, trace.L7GRPC, trace.L7DNS, trace.L7Kafka, trace.L7Dubbo}
	pipeline := []trace.L7Proto{trace.L7HTTP, trace.L7Redis, trace.L7MySQL, trace.L7Postgres, trace.L7MQTT, trace.L7AMQP}
	for _, p := range parallel {
		if !IsParallel(p) {
			t.Errorf("%v should be parallel", p)
		}
	}
	for _, p := range pipeline {
		if IsParallel(p) {
			t.Errorf("%v should be pipeline", p)
		}
	}
	// Codecs whose responses may carry association headers must not be
	// fast-path eligible; others with a ParseHeader must be.
	for _, p := range []trace.L7Proto{trace.L7HTTP, trace.L7HTTP2} {
		if Default().Lookup(p).Header != nil {
			t.Errorf("%v responses carry association headers; must not be fast-path eligible", p)
		}
	}
	for _, p := range []trace.L7Proto{trace.L7GRPC, trace.L7Postgres, trace.L7AMQP,
		trace.L7Redis, trace.L7MySQL, trace.L7Kafka, trace.L7MQTT, trace.L7DNS, trace.L7Dubbo} {
		if Default().Lookup(p).Header == nil {
			t.Errorf("%v should expose a fast-path header parser", p)
		}
	}
	// First-byte declarations must cover what Infer accepts: every corpus
	// sample's first byte is in its codec's probe list.
	for proto, payloads := range corpus() {
		e := Default().Lookup(proto)
		for i, payload := range payloads {
			if e.Traits.FirstBytes == nil {
				continue
			}
			found := false
			for _, b := range e.Traits.FirstBytes {
				if b == payload[0] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v sample %d: first byte %#x missing from FirstBytes", proto, i, payload[0])
			}
		}
	}
}

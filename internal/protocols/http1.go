package protocols

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deepflow/internal/trace"
)

// HTTPCodec implements HTTP/1.x, a pipeline text protocol and the main
// carrier of propagation headers (traceparent, B3, X-Request-ID).
type HTTPCodec struct{}

// Proto implements Codec.
func (HTTPCodec) Proto() trace.L7Proto { return trace.L7HTTP }

var httpMethods = []string{"GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"}

// Traits implements TraitedCodec. Responses carry proxy association
// headers (X-Request-ID), so they stay on the agent's slow path; the first
// bytes are the method initials plus 'H' for the response status line.
func (HTTPCodec) Traits() Traits {
	return Traits{FirstBytes: []byte{'G', 'P', 'D', 'H', 'O'}, MinLen: 4, RespHeaders: true}
}

// Infer implements Codec.
func (HTTPCodec) Infer(payload []byte) bool {
	if bytes.HasPrefix(payload, []byte("HTTP/1.")) {
		return true
	}
	for _, m := range httpMethods {
		if bytes.HasPrefix(payload, []byte(m+" ")) {
			return true
		}
	}
	return false
}

// Parse implements Codec.
func (HTTPCodec) Parse(payload []byte) (Message, error) {
	head := payload
	body := 0
	if i := bytes.Index(payload, []byte("\r\n\r\n")); i >= 0 {
		head = payload[:i]
		body = len(payload) - i - 4
	}
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 || lines[0] == "" {
		return Message{}, ErrShort
	}
	msg := Message{Proto: trace.L7HTTP, Headers: map[string]string{}}
	first := lines[0]

	declaredBody := -1
	for _, ln := range lines[1:] {
		k, v, ok := strings.Cut(ln, ":")
		if !ok {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(k))
		val := strings.TrimSpace(v)
		msg.Headers[key] = val
		if key == "content-length" {
			if n, err := strconv.Atoi(val); err == nil {
				declaredBody = n
			}
		}
	}
	headLen := len(payload) - body
	if declaredBody >= 0 {
		msg.TotalLen = headLen + declaredBody
	} else {
		msg.TotalLen = len(payload)
	}

	if strings.HasPrefix(first, "HTTP/1.") {
		parts := strings.SplitN(first, " ", 3)
		if len(parts) < 2 {
			return Message{}, errMalformed(trace.L7HTTP, "bad status line")
		}
		code, err := strconv.Atoi(parts[1])
		if err != nil {
			return Message{}, errMalformed(trace.L7HTTP, "bad status code")
		}
		msg.Type = trace.MsgResponse
		msg.Code = int32(code)
		if code >= 400 {
			msg.Status = "error"
		} else {
			msg.Status = "ok"
		}
		return msg, nil
	}

	parts := strings.SplitN(first, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return Message{}, errMalformed(trace.L7HTTP, "bad request line")
	}
	msg.Type = trace.MsgRequest
	msg.Method = parts[0]
	msg.Resource = parts[1]
	return msg, nil
}

// EncodeHTTPRequest builds an HTTP/1.1 request. Headers are emitted in
// sorted order for determinism; bodyLen zero bytes follow the head.
func EncodeHTTPRequest(method, path string, headers map[string]string, bodyLen int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	writeHeaders(&b, headers)
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", bodyLen)
	b.Write(make([]byte, bodyLen))
	return b.Bytes()
}

// EncodeHTTPResponse builds an HTTP/1.1 response.
func EncodeHTTPResponse(code int, headers map[string]string, bodyLen int) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", code, httpStatusText(code))
	writeHeaders(&b, headers)
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", bodyLen)
	b.Write(make([]byte, bodyLen))
	return b.Bytes()
}

func writeHeaders(b *bytes.Buffer, headers map[string]string) {
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, headers[k])
	}
}

func httpStatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	default:
		return "Status"
	}
}

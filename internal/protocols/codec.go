// Package protocols implements the application-protocol codecs the DeepFlow
// agent uses for message-type inference and parsing (paper §3.3.1, phase 2):
// HTTP/1.1, a framed HTTP/2-style protocol, gRPC-over-HTTP/2, DNS, Redis
// (RESP), MySQL client/server, PostgreSQL simple-query, a Kafka-style RPC,
// MQTT, AMQP, and Dubbo.
//
// Each codec can (a) cheaply decide whether a payload looks like its
// protocol (one-shot inference per connection), (b) parse a message into
// protocol-independent metadata — request/response type, resource, status,
// multiplexing stream ID, and any embedded propagation headers — and
// (c) encode synthetic wire messages for the workload simulator. Codecs
// self-describe through the registration table in registry.go: declared
// traits (parallel vs pipeline matching, magic first bytes, minimum header
// length) drive dispatch, and the optional ParseHeader method feeds the
// agent's lookup-only fast path.
package protocols

import (
	"fmt"

	"deepflow/internal/trace"
)

// Message is the protocol-independent result of parsing one payload.
type Message struct {
	Proto trace.L7Proto
	Type  trace.MessageType

	// Request fields.
	Method   string // verb / command / query type
	Resource string // path / key / table / topic / domain

	// Response fields.
	Code   int32
	Status string // "ok" | "error"

	// StreamID is the protocol's multiplexing correlation identifier for
	// parallel protocols (HTTP/2 stream, DNS ID, Kafka correlation ID,
	// Dubbo request ID). Zero for pipeline protocols.
	StreamID uint64

	// Headers carries propagation metadata found in the message:
	// "traceparent" (W3C), "b3" (Zipkin), "x-request-id" (proxy),
	// plus any application headers.
	Headers map[string]string

	// TotalLen is the declared full message length in bytes, used to
	// recognize continuation syscalls of the same message.
	TotalLen int
}

// Header returns a header value or "".
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// Codec is one protocol implementation.
type Codec interface {
	// Proto identifies the protocol.
	Proto() trace.L7Proto
	// Infer reports whether payload plausibly begins a message of this
	// protocol. It must be selective: inference runs once per connection
	// over all codecs (paper §3.3.1).
	Infer(payload []byte) bool
	// Parse extracts message metadata. It fails on malformed payloads.
	Parse(payload []byte) (Message, error)
}

// ErrShort indicates a payload too small to contain a message header.
var ErrShort = fmt.Errorf("protocols: payload too short")

// errMalformed builds a consistent parse error.
func errMalformed(p trace.L7Proto, why string) error {
	return fmt.Errorf("protocols: malformed %v message: %s", p, why)
}

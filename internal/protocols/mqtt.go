package protocols

import (
	"deepflow/internal/trace"
)

// MQTTCodec implements MQTT 3.1 fixed-header framing (paper reference [57]).
// The workloads use QoS-1 PUBLISH/PUBACK pairs, matched in pipeline order.
type MQTTCodec struct{}

// Proto implements Codec.
func (MQTTCodec) Proto() trace.L7Proto { return trace.L7MQTT }

// MQTT packet types.
const (
	mqttConnect   = 1
	mqttConnack   = 2
	mqttPublish   = 3
	mqttPuback    = 4
	mqttSubscribe = 8
	mqttSuback    = 9
)

var mqttNames = map[byte]string{
	mqttConnect: "CONNECT", mqttConnack: "CONNACK",
	mqttPublish: "PUBLISH", mqttPuback: "PUBACK",
	mqttSubscribe: "SUBSCRIBE", mqttSuback: "SUBACK",
}

// mqttFirstBytes enumerates every byte whose high nibble is a known MQTT
// packet type (the low flag nibble is arbitrary).
var mqttFirstBytes = mqttFirstByteSet()

func mqttFirstByteSet() []byte {
	types := []byte{mqttConnect, mqttConnack, mqttPublish, mqttPuback, mqttSubscribe, mqttSuback}
	out := make([]byte, 0, len(types)*16)
	for _, t := range types {
		for low := byte(0); low < 16; low++ {
			out = append(out, t<<4|low)
		}
	}
	return out
}

// Traits implements TraitedCodec.
func (MQTTCodec) Traits() Traits {
	return Traits{FirstBytes: mqttFirstBytes, MinLen: 2}
}

// ParseHeader implements HeaderParser: packet type and CONNACK return code
// from the fixed header, no topic decoding.
func (MQTTCodec) ParseHeader(payload []byte) (HeaderInfo, error) {
	if len(payload) < 2 {
		return HeaderInfo{}, ErrShort
	}
	typ := payload[0] >> 4
	if _, ok := mqttNames[typ]; !ok {
		return HeaderInfo{}, errMalformed(trace.L7MQTT, "unknown packet type")
	}
	rem, n := mqttRemaining(payload[1:])
	if n == 0 {
		return HeaderInfo{}, errMalformed(trace.L7MQTT, "bad remaining length")
	}
	hi := HeaderInfo{TotalLen: 1 + n + rem}
	switch typ {
	case mqttConnect, mqttPublish, mqttSubscribe:
		hi.Type = trace.MsgRequest
	case mqttConnack, mqttPuback, mqttSuback:
		hi.Type = trace.MsgResponse
		hi.Status = "ok"
		body := payload[1+n:]
		if typ == mqttConnack && len(body) >= 2 && body[1] != 0 {
			hi.Status = "error"
			hi.Code = int32(body[1])
		}
	}
	return hi, nil
}

// Infer implements Codec.
func (MQTTCodec) Infer(payload []byte) bool {
	if len(payload) < 2 {
		return false
	}
	typ := payload[0] >> 4
	if _, ok := mqttNames[typ]; !ok {
		return false
	}
	rem, n := mqttRemaining(payload[1:])
	if n == 0 {
		return false
	}
	return 1+n+rem == len(payload)
}

// mqttRemaining decodes the MQTT variable-length "remaining length".
func mqttRemaining(b []byte) (value, bytesUsed int) {
	mult := 1
	for i := 0; i < len(b) && i < 4; i++ {
		value += int(b[i]&0x7F) * mult
		if b[i]&0x80 == 0 {
			return value, i + 1
		}
		mult *= 128
	}
	return 0, 0
}

func mqttEncodeRemaining(v int) []byte {
	var out []byte
	for {
		d := byte(v % 128)
		v /= 128
		if v > 0 {
			d |= 0x80
		}
		out = append(out, d)
		if v == 0 {
			return out
		}
	}
}

// Parse implements Codec.
func (MQTTCodec) Parse(payload []byte) (Message, error) {
	if len(payload) < 2 {
		return Message{}, ErrShort
	}
	typ := payload[0] >> 4
	name, ok := mqttNames[typ]
	if !ok {
		return Message{}, errMalformed(trace.L7MQTT, "unknown packet type")
	}
	rem, n := mqttRemaining(payload[1:])
	if n == 0 {
		return Message{}, errMalformed(trace.L7MQTT, "bad remaining length")
	}
	msg := Message{Proto: trace.L7MQTT, Method: name, TotalLen: 1 + n + rem}
	body := payload[1+n:]
	switch typ {
	case mqttConnect, mqttPublish, mqttSubscribe:
		msg.Type = trace.MsgRequest
		if typ == mqttPublish || typ == mqttSubscribe {
			if len(body) >= 2 {
				tl := int(body[0])<<8 | int(body[1])
				if 2+tl <= len(body) {
					msg.Resource = string(body[2 : 2+tl])
				}
			}
		}
	case mqttConnack, mqttPuback, mqttSuback:
		msg.Type = trace.MsgResponse
		msg.Status = "ok"
		if typ == mqttConnack && len(body) >= 2 && body[1] != 0 {
			msg.Status = "error"
			msg.Code = int32(body[1])
		}
	}
	return msg, nil
}

// EncodeMQTTPublish builds a PUBLISH packet for topic with a body.
func EncodeMQTTPublish(topic string, bodyLen int) []byte {
	body := make([]byte, 2+len(topic)+2+bodyLen)
	body[0] = byte(len(topic) >> 8)
	body[1] = byte(len(topic))
	copy(body[2:], topic)
	// 2-byte packet identifier follows the topic (left zero), then payload.
	head := append([]byte{mqttPublish<<4 | 0x02}, mqttEncodeRemaining(len(body))...)
	return append(head, body...)
}

// EncodeMQTTPuback builds a PUBACK packet.
func EncodeMQTTPuback() []byte {
	return []byte{mqttPuback << 4, 2, 0, 0}
}

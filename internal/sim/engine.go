// Package sim provides the discrete-event simulation engine that drives all
// virtual-time components of the DeepFlow reproduction: the simulated kernel,
// the network simulator, and the microservice workloads.
//
// The engine maintains a virtual clock and an event priority queue. Events
// scheduled for the same instant run in schedule order, which makes every
// experiment deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the origin of virtual time. It is fixed (the SIGCOMM '23
// conference date) so trace timestamps are stable across runs.
var Epoch = time.Date(2023, time.September, 10, 0, 0, 0, 0, time.UTC)

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated work happens inside event callbacks.
type Engine struct {
	now  time.Duration // virtual time since Epoch
	seq  uint64        // tiebreaker for same-instant events
	pq   eventQueue
	rng  *rand.Rand
	stop bool
}

// NewEngine returns an engine with its virtual clock at Epoch and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return Epoch.Add(e.now) }

// Elapsed returns the virtual time elapsed since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Event is a handle to a scheduled callback; it can be cancelled.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.cancelled = true
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulation bug.
func (e *Engine) At(t time.Time, fn func()) *Event {
	d := t.Sub(Epoch)
	if d < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: %v < %v", d, e.now))
	}
	return e.schedule(d, fn)
}

// After schedules fn to run d after the current virtual time. Negative
// delays are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.schedule(e.now+d, fn)
}

func (e *Engine) schedule(at time.Duration, fn func()) *Event {
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// Run processes events until the queue drains or until the virtual clock
// would pass limit (events at exactly limit still run). It returns the
// number of events executed.
func (e *Engine) Run(limit time.Duration) int {
	n := 0
	e.stop = false
	for len(e.pq) > 0 && !e.stop {
		ev := e.pq[0]
		if ev.at > limit {
			break
		}
		heap.Pop(&e.pq)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		n++
	}
	// Advance the clock to the limit even if the queue drained early, so
	// repeated Run calls see monotonic time.
	if !e.stop && e.now < limit {
		e.now = limit
	}
	return n
}

// RunAll processes every pending event regardless of time.
func (e *Engine) RunAll() int {
	n := 0
	e.stop = false
	for len(e.pq) > 0 && !e.stop {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		n++
	}
	return n
}

// Stop aborts the current Run/RunAll after the in-flight event returns.
func (e *Engine) Stop() { e.stop = true }

// Pending reports the number of events still queued (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.pq) }

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

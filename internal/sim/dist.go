package sim

import (
	"math"
	"math/rand"
	"time"
)

// Dist is a distribution of durations used for service times and link jitter.
type Dist interface {
	// Sample draws one duration using rng.
	Sample(rng *rand.Rand) time.Duration
	// Mean returns the distribution mean.
	Mean() time.Duration
}

// Const is a degenerate distribution that always returns D.
type Const struct{ D time.Duration }

func (c Const) Sample(*rand.Rand) time.Duration { return c.D }
func (c Const) Mean() time.Duration             { return c.D }

// Exponential is an exponential distribution with the given mean,
// a standard model for service times in queueing systems.
type Exponential struct{ M time.Duration }

func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(e.M))
}
func (e Exponential) Mean() time.Duration { return e.M }

// Lognormal is a lognormal distribution parameterized by its median and a
// shape factor sigma; it models heavy-tailed microservice handler latencies.
type Lognormal struct {
	Median time.Duration
	Sigma  float64
}

func (l Lognormal) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(float64(l.Median) * math.Exp(l.Sigma*rng.NormFloat64()))
}

func (l Lognormal) Mean() time.Duration {
	return time.Duration(float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2))
}

// Uniform is uniform in [Lo, Hi].
type Uniform struct{ Lo, Hi time.Duration }

func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(rng.Int63n(int64(u.Hi-u.Lo)))
}
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

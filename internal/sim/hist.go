package sim

import (
	"sort"
	"time"
)

// Histogram records latency samples and reports percentiles. It keeps raw
// samples (experiments record at most a few hundred thousand), which gives
// exact quantiles in the spirit of wrk2's corrected latency recording.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sum += d
	h.sorted = false
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank interpolation, or 0 with no samples.
func (h *Histogram) Percentile(p float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(p / 100 * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.Percentile(100) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

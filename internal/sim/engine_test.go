package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30*time.Millisecond, func() { got = append(got, 3) })
	e.After(10*time.Millisecond, func() { got = append(got, 1) })
	e.After(20*time.Millisecond, func() { got = append(got, 2) })
	n := e.RunAll()
	if n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at time.Time
	e.After(42*time.Millisecond, func() { at = e.Now() })
	e.RunAll()
	want := Epoch.Add(42 * time.Millisecond)
	if !at.Equal(want) {
		t.Fatalf("clock = %v, want %v", at, want)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(10*time.Millisecond, func() { ran++ })
	e.After(20*time.Millisecond, func() { ran++ })
	e.After(30*time.Millisecond, func() { ran++ })
	n := e.Run(20 * time.Millisecond)
	if n != 2 || ran != 2 {
		t.Fatalf("ran %d/%d events before limit, want 2", n, ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// Clock should have advanced exactly to the limit.
	if e.Elapsed() != 20*time.Millisecond {
		t.Fatalf("elapsed = %v", e.Elapsed())
	}
	e.RunAll()
	if ran != 3 {
		t.Fatalf("remaining event did not run")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	ev := e.After(time.Millisecond, func() { ran = true })
	ev.Cancel()
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var ticks []time.Duration
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Elapsed())
		if len(ticks) < 5 {
			e.After(10*time.Millisecond, tick)
		}
	}
	e.After(0, tick)
	e.RunAll()
	if len(ticks) != 5 {
		t.Fatalf("ticks = %d, want 5", len(ticks))
	}
	for i, at := range ticks {
		if at != time.Duration(i)*10*time.Millisecond {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(Epoch.Add(5*time.Millisecond), func() {})
	})
	e.RunAll()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.After(1*time.Millisecond, func() { ran++; e.Stop() })
	e.After(2*time.Millisecond, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran = %d after Stop, want 1", ran)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine(7)
		var out []time.Duration
		for i := 0; i < 100; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
			e.After(d, func() { out = append(out, e.Elapsed()) })
		}
		e.RunAll()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: events always fire in non-decreasing time order, regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine(1)
		var fired []time.Duration
		for _, d := range delays {
			e.After(time.Duration(d)*time.Microsecond, func() {
				fired = append(fired, e.Elapsed())
			})
		}
		e.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := []struct {
		name string
		d    Dist
	}{
		{"const", Const{10 * time.Millisecond}},
		{"exp", Exponential{10 * time.Millisecond}},
		{"lognormal", Lognormal{Median: 8 * time.Millisecond, Sigma: 0.5}},
		{"uniform", Uniform{5 * time.Millisecond, 15 * time.Millisecond}},
	}
	for _, tc := range dists {
		var sum time.Duration
		const n = 20000
		for i := 0; i < n; i++ {
			s := tc.d.Sample(rng)
			if s < 0 {
				t.Fatalf("%s: negative sample %v", tc.name, s)
			}
			sum += s
		}
		mean := sum / n
		want := tc.d.Mean()
		if mean < want*8/10 || mean > want*12/10 {
			t.Errorf("%s: empirical mean %v, want ≈%v", tc.name, mean, want)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(50); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(90); got < 89*time.Millisecond || got > 91*time.Millisecond {
		t.Errorf("p90 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Error("reset did not clear histogram")
	}
}

// Property: percentile is monotonic in p and bounded by min/max samples.
func TestHistogramMonotonicProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(0) <= h.Percentile(100)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package dstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

// testBatch builds batch #seq with a deterministic handful of rows and its
// wire payload — exactly what the ingest worker hands Append.
func testBatch(seq int) (*transport.Batch, []byte) {
	var spans []*trace.Span
	for j := 0; j < 5; j++ {
		spans = append(spans, testSpan(seq*5+j))
	}
	b := &transport.Batch{Host: "node-1", Seq: uint64(seq), Spans: spans}
	if seq%2 == 0 {
		_, flows, profiles := testRows(4)
		b.Flows = flows
		b.Profiles = profiles
	}
	return b, transport.Encode(b)
}

func appendBatches(t *testing.T, s *Shard, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		b, payload := testBatch(i)
		if err := s.Append(payload, b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// collect scans the shard into flat row slices (blocks then memtable).
func collect(t *testing.T, s *Shard) ([]*trace.Span, []transport.FlowSample, []profiling.Sample) {
	t.Helper()
	var spans []*trace.Span
	var flows []transport.FlowSample
	var profiles []profiling.Sample
	err := s.Scan(func(info BlockInfo, bs []*trace.Span, bf []transport.FlowSample, bp []profiling.Sample) error {
		spans = append(spans, bs...)
		flows = append(flows, bf...)
		profiles = append(profiles, bp...)
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return spans, flows, profiles
}

func sameSpans(a, b []*trace.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(spanWire(a[i]), spanWire(b[i])) {
			return false
		}
	}
	return true
}

func TestShardSealAndScan(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 12, SealBytes: 1 << 30}
	s, rs, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs != (ReplayStats{}) {
		t.Fatalf("fresh dir replayed %+v", rs)
	}
	appendBatches(t, s, 0, 10) // 50 spans, seal every 3 batches (15 ≥ 12)
	st := s.Stats()
	if st.Blocks == 0 {
		t.Fatal("no blocks sealed")
	}
	if st.Blocks != int64(len(s.Blocks())) {
		t.Fatalf("stats report %d blocks, listing has %d", st.Blocks, len(s.Blocks()))
	}
	spans, _, _ := collect(t, s)
	var want []*trace.Span
	for i := 0; i < 10; i++ {
		b, _ := testBatch(i)
		want = append(want, b.Spans...)
	}
	if !sameSpans(spans, want) {
		t.Fatal("scan order differs from append order")
	}
	if got := s.DiskBytes(); got <= 0 {
		t.Fatalf("DiskBytes = %d", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShardCleanCloseZeroReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncGroup, SealSpans: 1 << 30, SealBytes: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 6)
	before, bf, bp := collect(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var applied int
	s2, rs, err := Open(dir, cfg, func(b *transport.Batch) { applied += len(b.Spans) })
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.WALBatches != 0 || rs.WALSegments != 0 {
		t.Fatalf("clean shutdown replayed %d WAL batches from %d segments", rs.WALBatches, rs.WALSegments)
	}
	if rs.BlockSpans != len(before) || applied != len(before) {
		t.Fatalf("block replay returned %d spans (applied %d), want %d", rs.BlockSpans, applied, len(before))
	}
	after, af, ap := collect(t, s2)
	if !sameSpans(after, before) || len(af) != len(bf) || len(ap) != len(bp) {
		t.Fatal("reopened shard differs from pre-close state")
	}
}

func TestShardAbortReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 1 << 30, SealBytes: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 8)
	before, _, _ := collect(t, s)
	s.Abort() // crash: no seal, no sync

	var order []uint64
	s2, rs, err := Open(dir, cfg, func(b *transport.Batch) { order = append(order, b.Seq) })
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.WALBatches != 8 || rs.WALSpans != len(before) || rs.Blocks != 0 {
		t.Fatalf("replay = %+v, want 8 WAL batches / %d spans / 0 blocks", rs, len(before))
	}
	for i, seq := range order {
		if seq != uint64(i) {
			t.Fatalf("batches replayed out of order: %v", order)
		}
	}
	after, _, _ := collect(t, s2)
	if !sameSpans(after, before) {
		t.Fatal("replayed rows differ from pre-crash rows")
	}
}

func TestShardTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 1 << 30, SealBytes: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 4)
	active := s.wal.path
	s.Abort()

	// Shear 3 bytes off the active segment: the 4th batch becomes a torn
	// write, the first three replay.
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(active, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rs, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.WALBatches != 3 || rs.TornTailDropped != 1 {
		t.Fatalf("replay = %+v, want 3 batches with 1 torn tail", rs)
	}
	var want []*trace.Span
	for i := 0; i < 3; i++ {
		b, _ := testBatch(i)
		want = append(want, b.Spans...)
	}
	got, _, _ := collect(t, s2)
	if !sameSpans(got, want) {
		t.Fatal("surviving rows differ")
	}
}

func TestShardMidFileCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 1 << 30, SealBytes: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 4)
	active := s.wal.path
	s.Abort()

	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderSize+walFrameSize+1] ^= 0xff // inside batch 0's payload
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, cfg, nil); err == nil {
		t.Fatal("mid-file corruption opened without error")
	}
}

func TestShardEvictBefore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 5, SealBytes: 1 << 30, CompactFanIn: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 6) // one block per batch (5 spans each)
	blocks := s.Blocks()
	if len(blocks) != 6 {
		t.Fatalf("expected 6 blocks, have %d", len(blocks))
	}
	// Cut between block 2 and 3: spans are time-ordered by construction.
	cutoff := blocks[3].MinNS
	gone, spans := s.EvictBefore(cutoff)
	if gone != 3 || spans != 15 {
		t.Fatalf("evicted %d blocks / %d spans, want 3 / 15", gone, spans)
	}
	st := s.Stats()
	if st.Blocks != 3 || st.EvictedBlocks != 3 || st.EvictedSpans != 15 {
		t.Fatalf("stats after evict: %+v", st)
	}
	// Eviction is idempotent at the same cutoff.
	if gone, _ := s.EvictBefore(cutoff); gone != 0 {
		t.Fatalf("second eviction dropped %d blocks", gone)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Evicted data stays gone across reopen.
	s2, rs, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.BlockSpans != 15 {
		t.Fatalf("reopen replayed %d spans, want 15", rs.BlockSpans)
	}
}

func TestShardDiskBytesMatchesFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 7, SealBytes: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendBatches(t, s, 0, 9)
	var onDisk int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := os.Stat(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		onDisk += info.Size()
	}
	if got := s.DiskBytes(); got != onDisk {
		t.Fatalf("DiskBytes = %d, directory holds %d", got, onDisk)
	}
}

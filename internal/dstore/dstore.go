// Package dstore is the durable tiered storage engine under the DeepFlow
// server — the half of the paper's ClickHouse story (§3.4) that
// internal/storage's in-memory columnar accounting stood in for. Each
// ingest shard owns one Shard rooted in its own directory:
//
//	WAL segments        →  memtable  →  sealed blocks  →  compaction  →  TTL
//	(CRC-framed raw     (decoded rows  (immutable files,  (size-tiered   (whole
//	batches, group-      awaiting       per-column         merge of       blocks
//	commit fsync)        seal)          compression)       neighbors)     dropped)
//
// The WAL payload is the exact wire-encoded batch the ingest worker
// received (internal/transport), so crash recovery replays the identical
// ingest path — enrich, store, rollup, freshness — and reaches a state
// byte-identical with pre-crash query answers. Sealed blocks re-encode
// rows columnarly: delta+varint for the smart-encoded integer columns and
// the existing LowCardinality dictionary for strings (storage.Column both
// ways), with the span's non-columnar rest, flows, and profiles in the
// trace/transport wire layout. No second format is invented anywhere.
//
// Concurrency: a Shard is internally locked (mu) around the WAL, the
// memtable, and the block list; block files themselves are immutable, so
// scans and compactions read them outside the lock, with reference counts
// deferring file deletion past in-flight readers. All counters the
// deepflow_storage_* gauges scrape are atomics.
//
// Determinism contract: dstore is a dflint contract package — replay,
// scan, compaction, and eviction never consult a clock and never let map
// iteration order escape (rows and blocks are slices in append order).
package dstore

import "time"

// SyncPolicy controls when the WAL fsyncs.
type SyncPolicy uint8

// Fsync policies.
const (
	// SyncGroup (default) is group commit: appends accumulate and fsync
	// once GroupBytes are dirty, plus on every seal and clean close — the
	// ClickHouse-style tradeoff between durability window and throughput.
	SyncGroup SyncPolicy = iota
	// SyncAlways fsyncs after every appended batch.
	SyncAlways
	// SyncNever leaves flushing to the OS except on seal and clean close.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "sync?"
	}
}

// ParseSyncPolicy maps a -fsync flag value to its policy.
func ParseSyncPolicy(s string) (SyncPolicy, bool) {
	switch s {
	case "group", "":
		return SyncGroup, true
	case "always":
		return SyncAlways, true
	case "never":
		return SyncNever, true
	default:
		return SyncGroup, false
	}
}

// BlockEncoding selects the per-column compression of sealed blocks — the
// on-disk axis of Fig. 14, swept by `dfbench storage`.
type BlockEncoding uint8

// Block encodings.
const (
	// EncDelta (default): delta+varint integer columns, LowCardinality
	// dictionary string columns.
	EncDelta BlockEncoding = iota
	// EncDirect: plain varint integers, raw string columns ("direct
	// storing" moved to disk).
	EncDirect
	// EncLowCard: plain varint integers, LowCardinality strings —
	// isolates what the dictionary buys without delta.
	EncLowCard
)

func (e BlockEncoding) String() string {
	switch e {
	case EncDelta:
		return "delta-varint"
	case EncDirect:
		return "direct"
	case EncLowCard:
		return "low-cardinality"
	default:
		return "enc?"
	}
}

// Config tunes one shard of the engine. The zero value is NOT usable;
// start from DefaultConfig.
type Config struct {
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
	// GroupBytes is the group-commit threshold: under SyncGroup the WAL
	// fsyncs once this many bytes are dirty.
	GroupBytes int
	// SealSpans seals the memtable into a block once it holds this many
	// spans.
	SealSpans int
	// SealBytes seals once the live (uncovered) WAL reaches this many
	// bytes, whichever of the two thresholds trips first.
	SealBytes int64
	// CompactFanIn merges this many adjacent same-tier blocks per
	// compaction step (size-tiered policy).
	CompactFanIn int
	// Encoding is the sealed blocks' per-column compression.
	Encoding BlockEncoding
}

// DefaultConfig returns the production-shaped tuning.
func DefaultConfig() Config {
	return Config{
		Sync:         SyncGroup,
		GroupBytes:   256 << 10,
		SealSpans:    4096,
		SealBytes:    1 << 20,
		CompactFanIn: 4,
		Encoding:     EncDelta,
	}
}

// withDefaults fills zero fields so partially-specified test configs work.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.GroupBytes <= 0 {
		c.GroupBytes = d.GroupBytes
	}
	if c.SealSpans <= 0 {
		c.SealSpans = d.SealSpans
	}
	if c.SealBytes <= 0 {
		c.SealBytes = d.SealBytes
	}
	if c.CompactFanIn < 2 {
		c.CompactFanIn = d.CompactFanIn
	}
	return c
}

// ReplayStats reports what Open recovered from disk: rows that came back
// from sealed blocks versus batches replayed through the WAL, plus the
// torn-tail records dropped on the way. A clean shutdown (Close seals and
// syncs) replays zero WAL batches.
type ReplayStats struct {
	Blocks        int // sealed blocks replayed
	BlockSpans    int
	BlockFlows    int
	BlockProfiles int

	WALSegments int // live WAL segments replayed
	WALBatches  int
	WALSpans    int

	// TornTailDropped counts trailing WAL records dropped as torn writes
	// (incomplete frame or CRC-bad final record). Mid-file corruption is a
	// hard error, never a drop.
	TornTailDropped int
}

// Add folds o into s (per-shard stats summed server-wide).
func (s *ReplayStats) Add(o ReplayStats) {
	s.Blocks += o.Blocks
	s.BlockSpans += o.BlockSpans
	s.BlockFlows += o.BlockFlows
	s.BlockProfiles += o.BlockProfiles
	s.WALSegments += o.WALSegments
	s.WALBatches += o.WALBatches
	s.WALSpans += o.WALSpans
	s.TornTailDropped += o.TornTailDropped
}

// Stats is a point-in-time snapshot of one shard's tiers, assembled from
// atomics (safe to call concurrently with ingest).
type Stats struct {
	WALBytes    int64 // live (uncovered) WAL segment bytes
	WALSegments int64
	SealedBytes int64 // sealed block file bytes
	Blocks      int64
	MemSpans    int64 // memtable spans awaiting seal

	Compactions      int64 // merges performed
	CompactionDebt   int64 // blocks above one per size tier (pending merge inputs)
	EvictedBlocks    int64 // blocks dropped by retention
	EvictedSpans     int64 // spans inside those blocks
	TornTailDropped  int64
	WALAppendErrors  int64
	ReplayWALBatches int64
	ReplayWALSpans   int64
	ReplayBlockSpans int64
}

// Retention helpers: durations are wall-clock TTLs applied by the server's
// retention cascade; cutoffNS converts one to the block-eviction horizon.
func cutoffNS(cutoff time.Time) int64 { return cutoff.UnixNano() }

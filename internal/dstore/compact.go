package dstore

// Size-tiered compaction: sealed blocks are bucketed into tiers by
// log2(size), and whenever CompactFanIn adjacent blocks (in walFirst
// order) share a tier they merge into one block covering their combined
// WAL range — row order preserved, so a compacted directory replays the
// identical ingest sequence. Inputs are read and the merged output written
// outside the shard lock; the swap re-validates the run under the lock
// (retention may have evicted an input meanwhile) and retires the old
// files through the same refcount protocol scans use.

import (
	"fmt"
	"math/bits"
	"os"
	"path/filepath"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

// compactTierBase anchors tier 0: blocks under 32 KiB share the bottom
// tier, and each tier above doubles the size range.
const compactTierBase = 32 << 10

// compactTier buckets a block size into its size tier.
func compactTier(size int64) int {
	if size < compactTierBase {
		return 0
	}
	return bits.Len64(uint64(size / compactTierBase))
}

// compactCandidateLocked finds the first run of cfg.CompactFanIn adjacent
// same-tier blocks, or nil. Callers hold mu.
func (s *Shard) compactCandidateLocked() []*blockHandle {
	fanIn := s.cfg.CompactFanIn
	for i := 0; i+fanIn <= len(s.blocks); i++ {
		tier := compactTier(s.blocks[i].bytes)
		run := 1
		for run < fanIn && compactTier(s.blocks[i+run].bytes) == tier {
			run++
		}
		if run == fanIn {
			return s.blocks[i : i+fanIn : i+fanIn]
		}
	}
	return nil
}

// recomputeDebtLocked refreshes the compaction-debt gauge: blocks above
// one per occupied size tier, i.e. how many merge inputs are pending.
// Callers hold mu.
func (s *Shard) recomputeDebtLocked() {
	tiers := make(map[int]bool, 8)
	for _, h := range s.blocks {
		tiers[compactTier(h.bytes)] = true
	}
	s.compactionDebt.Store(int64(len(s.blocks) - len(tiers)))
}

// Compact runs compaction steps until no run of CompactFanIn same-tier
// adjacent blocks remains, returning the number of merges performed. The
// ingest path calls it after every seal; tests call it directly.
func (s *Shard) Compact() (merges int, err error) {
	for {
		did, err := s.compactOnce()
		if err != nil {
			return merges, err
		}
		if !did {
			return merges, nil
		}
		merges++
	}
}

// compactOnce performs one merge step if a candidate run exists.
func (s *Shard) compactOnce() (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, nil
	}
	run := s.compactCandidateLocked()
	if run == nil {
		s.mu.Unlock()
		return false, nil
	}
	inputs := make([]*blockHandle, len(run))
	copy(inputs, run)
	for _, h := range inputs {
		h.refs++
	}
	s.mu.Unlock()

	// Read and merge outside the lock: block files are immutable and the
	// refs keep them on disk even if eviction races us.
	var spans []*trace.Span
	var flows []transport.FlowSample
	var profiles []profiling.Sample
	for _, h := range inputs {
		data, err := os.ReadFile(h.path)
		if err != nil {
			s.releaseHandles(inputs)
			return false, fmt.Errorf("dstore: compact read: %w", err)
		}
		_, bs, bf, bp, err := unmarshalBlock(data)
		if err != nil {
			s.releaseHandles(inputs)
			return false, fmt.Errorf("dstore: compact %s: %w", filepath.Base(h.path), err)
		}
		spans = append(spans, bs...)
		flows = append(flows, bf...)
		profiles = append(profiles, bp...)
	}
	walFirst, walLast := inputs[0].walFirst, inputs[len(inputs)-1].walLast
	data := marshalBlock(walFirst, walLast, spans, flows, profiles, s.cfg.Encoding)

	s.mu.Lock()
	// Re-validate: the run must still be intact and alive (eviction may
	// have removed an input while we merged). If not, drop the attempt.
	at := -1
	for i := range s.blocks {
		if s.blocks[i] == inputs[0] {
			at = i
			break
		}
	}
	intact := at >= 0 && at+len(inputs) <= len(s.blocks)
	if intact {
		for i, h := range inputs {
			if s.blocks[at+i] != h || h.dead {
				intact = false
				break
			}
		}
	}
	if !intact {
		s.mu.Unlock()
		s.releaseHandles(inputs)
		return false, nil
	}
	merged, err := s.writeBlockLocked(walFirst, walLast, data, len(spans), len(flows), len(profiles))
	if err != nil {
		s.mu.Unlock()
		s.releaseHandles(inputs)
		return false, err
	}
	// Swap the run for the merged block; input files are removed once the
	// last reference (ours, or a concurrent scan's) drops. A crash between
	// the merged block's rename and these deletes leaves subsumed inputs on
	// disk — Open detects containment and discards them.
	for _, h := range inputs {
		h.dead = true
	}
	rest := make([]*blockHandle, 0, len(s.blocks)-len(inputs)+1)
	rest = append(rest, s.blocks[:at]...)
	rest = append(rest, merged)
	rest = append(rest, s.blocks[at+len(inputs):]...)
	s.blocks = rest
	s.sealedBytes.Add(merged.bytes)
	s.nBlocks.Add(1)
	for _, h := range inputs {
		s.sealedBytes.Add(-h.bytes)
	}
	s.nBlocks.Add(-int64(len(inputs)))
	s.compactions.Add(1)
	s.recomputeDebtLocked()
	s.mu.Unlock()

	s.releaseHandles(inputs)
	syncDir(s.dir)
	return true, nil
}

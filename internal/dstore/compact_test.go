package dstore

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

func TestCompactMergesAdjacentPreservingOrder(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 5, SealBytes: 1 << 30, CompactFanIn: 4}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendBatches(t, s, 0, 8) // 8 single-batch blocks, all tier 0
	before, bf, bp := collect(t, s)
	nBefore := len(s.Blocks())
	if nBefore != 8 {
		t.Fatalf("expected 8 blocks before compaction, have %d", nBefore)
	}
	merges, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if merges == 0 {
		t.Fatal("no merges performed")
	}
	blocks := s.Blocks()
	if len(blocks) >= nBefore {
		t.Fatalf("compaction did not reduce block count (%d → %d)", nBefore, len(blocks))
	}
	// Coverage stays contiguous and ordered.
	for i := 1; i < len(blocks); i++ {
		if blocks[i].WALFirst <= blocks[i-1].WALLast {
			t.Fatalf("blocks overlap after compaction: %+v", blocks)
		}
	}
	after, af, ap := collect(t, s)
	if !sameSpans(after, before) || len(af) != len(bf) || len(ap) != len(bp) {
		t.Fatal("compaction changed scan contents or order")
	}
	if st := s.Stats(); st.Compactions != int64(merges) {
		t.Fatalf("stats report %d compactions, want %d", st.Compactions, merges)
	}
	// Input files are gone; only live blocks remain on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var blkFiles int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".blk" {
			blkFiles++
		}
	}
	if blkFiles != len(blocks) {
		t.Fatalf("%d block files on disk, %d live blocks", blkFiles, len(blocks))
	}
}

func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 5, SealBytes: 1 << 30, CompactFanIn: 2}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 6)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	before, _, _ := collect(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rs, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.BlockSpans != len(before) || rs.WALBatches != 0 {
		t.Fatalf("reopen after compaction replayed %+v, want %d block spans", rs, len(before))
	}
	after, _, _ := collect(t, s2)
	if !sameSpans(after, before) {
		t.Fatal("rows differ after compacted reopen")
	}
}

func TestCompactCrashLeavesSubsumedInputs(t *testing.T) {
	// Simulate a crash between the merged block's rename and the input
	// deletes by restoring an input file afterwards: Open must discard it.
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 5, SealBytes: 1 << 30, CompactFanIn: 1 << 30}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendBatches(t, s, 0, 4)
	inputs := s.Blocks()
	saved := map[string][]byte{}
	for _, b := range inputs {
		data, err := os.ReadFile(b.Path)
		if err != nil {
			t.Fatal(err)
		}
		saved[b.Path] = data
	}
	s.cfg.CompactFanIn = 4
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	before, _, _ := collect(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash debris": put one input back next to the merged block.
	for path, data := range saved {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		break
	}
	var applied int
	s2, rs, err := Open(dir, cfg, func(b *transport.Batch) { applied += len(b.Spans) })
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rs.BlockSpans != len(before) || applied != len(before) {
		t.Fatalf("subsumed input double-replayed: %d spans (applied %d), want %d", rs.BlockSpans, applied, len(before))
	}
	after, _, _ := collect(t, s2)
	if !sameSpans(after, before) {
		t.Fatal("rows differ after debris cleanup")
	}
}

func TestCompactVersusScanRace(t *testing.T) {
	// Scans decode block files while compaction merges and deletes them;
	// the refcount protocol must keep every file readable until released.
	// Run under -race.
	dir := t.TempDir()
	cfg := Config{Sync: SyncNever, SealSpans: 5, SealBytes: 1 << 30, CompactFanIn: 2}
	s, _, err := Open(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	appendBatches(t, s, 0, 12)
	// The first 12 batches are sealed before any concurrency starts; rows
	// are only appended after them, so every scan must observe this exact
	// prefix regardless of interleaved compactions and seals.
	want, _, _ := collect(t, s)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var got []*trace.Span
				err := s.Scan(func(info BlockInfo, bs []*trace.Span, _ []transport.FlowSample, _ []profiling.Sample) error {
					for _, sp := range bs {
						cp := *sp
						got = append(got, &cp)
					}
					return nil
				})
				if err != nil {
					t.Errorf("scan during compaction: %v", err)
					return
				}
				if len(got) < len(want) || !sameSpans(got[:len(want)], want) {
					t.Error("scan observed wrong prefix during compaction")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Compact(); err != nil {
			t.Errorf("compact: %v", err)
			break
		}
		// Seal more single-batch blocks to keep candidates appearing.
		appendBatches(t, s, 12+i*2, 12+i*2+2)
	}
	close(stop)
	wg.Wait()
}

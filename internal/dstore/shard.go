package dstore

// Shard is one ingest shard's durable engine: an append-only WAL in front
// of an in-memory memtable, sealed into immutable block files. All mutable
// state lives behind mu; block files are immutable and read outside the
// lock with refcounted handles deferring deletion past in-flight readers.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

// blockHandle tracks one sealed block file. The meta fields are immutable
// after construction; refs/dead are guarded by the shard's mu.
type blockHandle struct {
	path              string
	walFirst, walLast uint64
	bytes             int64
	spans             int
	flows             int
	profiles          int
	minNS, maxNS      int64

	refs int  // in-flight readers (scans, compactions)
	dead bool // superseded or evicted; file removed once refs==0
}

// memtable is the un-sealed tail: decoded rows awaiting the next seal,
// mirroring exactly the live (uncovered) WAL segments.
type memtable struct {
	spans    []*trace.Span
	flows    []transport.FlowSample
	profiles []profiling.Sample
}

func (m *memtable) reset() {
	m.spans = nil
	m.flows = nil
	m.profiles = nil
}

// Shard is the durable engine for one ingest shard.
type Shard struct {
	dir string
	cfg Config

	mu      sync.Mutex
	wal     *walWriter
	walFrom uint64 // lowest live (uncovered) WAL segment sequence
	liveWAL int64  // bytes across live segments other than the active one
	mem     memtable
	blocks  []*blockHandle // ascending walFirst order
	closed  bool

	// Stats atomics, readable without mu.
	walBytes    atomic.Int64
	walSegments atomic.Int64
	sealedBytes atomic.Int64
	nBlocks     atomic.Int64
	memSpans    atomic.Int64

	compactions     atomic.Int64
	compactionDebt  atomic.Int64
	evictedBlocks   atomic.Int64
	evictedSpans    atomic.Int64
	tornTail        atomic.Int64
	walAppendErrors atomic.Int64
	replayWALBatch  atomic.Int64
	replayWALSpans  atomic.Int64
	replayBlkSpans  atomic.Int64
}

// Open recovers (or creates) a shard directory and replays its contents in
// tier order — sealed blocks first, then live WAL segments — invoking
// apply for every recovered batch so the caller rebuilds its in-memory
// state through the identical ingest path a live batch takes. Crash debris
// is cleaned up on the way: *.tmp files are removed, and WAL segments
// already covered by a sealed block (crash between rename and delete) are
// deleted.
func Open(dir string, cfg Config, apply func(*transport.Batch)) (*Shard, ReplayStats, error) {
	cfg = cfg.withDefaults()
	var rs ReplayStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, rs, fmt.Errorf("dstore: open shard: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, rs, fmt.Errorf("dstore: open shard: %w", err)
	}
	type blockFile struct {
		name              string
		walFirst, walLast uint64
	}
	var blockFiles []blockFile
	var walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			_ = os.Remove(filepath.Join(dir, name))
		case filepath.Ext(name) == ".blk":
			first, last, ok := parseBlockName(name)
			if !ok {
				return nil, rs, fmt.Errorf("dstore: unrecognized block file %s", name)
			}
			blockFiles = append(blockFiles, blockFile{name, first, last})
		case filepath.Ext(name) == ".log":
			seq, ok := parseWALName(name)
			if !ok {
				return nil, rs, fmt.Errorf("dstore: unrecognized wal file %s", name)
			}
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(blockFiles, func(i, j int) bool {
		if blockFiles[i].walFirst != blockFiles[j].walFirst {
			return blockFiles[i].walFirst < blockFiles[j].walFirst
		}
		return blockFiles[i].walLast < blockFiles[j].walLast
	})
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })

	// A crash between a compaction's merged-block rename and its input
	// deletes leaves inputs whose WAL range is strictly contained in the
	// merged block's — discard them, the merged block carries their rows.
	kept := blockFiles[:0]
	for _, bf := range blockFiles {
		subsumed := false
		for _, other := range blockFiles {
			if other.name != bf.name && other.walFirst <= bf.walFirst && bf.walLast <= other.walLast {
				subsumed = true
				break
			}
		}
		if subsumed {
			_ = os.Remove(filepath.Join(dir, bf.name))
			continue
		}
		kept = append(kept, bf)
	}
	blockFiles = kept

	// Sealed blocks supersede the WAL segments they cover; a crash between
	// block rename and segment delete leaves both, so finish the delete now.
	var maxCovered, maxSeq uint64
	haveBlocks := len(blockFiles) > 0
	for _, bf := range blockFiles {
		if bf.walLast > maxCovered {
			maxCovered = bf.walLast
		}
		if bf.walLast > maxSeq {
			maxSeq = bf.walLast
		}
	}
	live := walSeqs[:0]
	for _, seq := range walSeqs {
		if haveBlocks && seq <= maxCovered {
			_ = os.Remove(filepath.Join(dir, walName(seq)))
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		live = append(live, seq)
	}

	s := &Shard{dir: dir, cfg: cfg}

	for _, bf := range blockFiles {
		path := filepath.Join(dir, bf.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, rs, fmt.Errorf("dstore: replay block: %w", err)
		}
		meta, spans, flows, profiles, err := unmarshalBlock(data)
		if err != nil {
			return nil, rs, fmt.Errorf("dstore: replay %s: %w", bf.name, err)
		}
		h := &blockHandle{
			path: path, walFirst: meta.walFirst, walLast: meta.walLast,
			bytes: int64(len(data)), spans: meta.nSpans, flows: meta.nFlows,
			profiles: meta.nProfiles, minNS: meta.minNS, maxNS: meta.maxNS,
		}
		s.blocks = append(s.blocks, h)
		s.sealedBytes.Add(h.bytes)
		s.nBlocks.Add(1)
		rs.Blocks++
		rs.BlockSpans += meta.nSpans
		rs.BlockFlows += meta.nFlows
		rs.BlockProfiles += meta.nProfiles
		if apply != nil {
			apply(&transport.Batch{Spans: spans, Flows: flows, Profiles: profiles})
		}
	}
	s.replayBlkSpans.Store(int64(rs.BlockSpans))

	// Live WAL segments replay into the memtable — the rows a crash caught
	// between append and seal.
	for _, seq := range live {
		path := filepath.Join(dir, walName(seq))
		payloads, torn, err := readWALSegment(path)
		if err != nil {
			return nil, rs, err
		}
		rs.WALSegments++
		rs.TornTailDropped += torn
		info, statErr := os.Stat(path)
		if statErr != nil {
			return nil, rs, fmt.Errorf("dstore: replay wal: %w", statErr)
		}
		s.liveWAL += info.Size()
		for _, payload := range payloads {
			b, err := transport.Decode(payload)
			if err != nil {
				return nil, rs, fmt.Errorf("dstore: replay %s: %w", filepath.Base(path), err)
			}
			s.mem.spans = append(s.mem.spans, b.Spans...)
			s.mem.flows = append(s.mem.flows, b.Flows...)
			s.mem.profiles = append(s.mem.profiles, b.Profiles...)
			rs.WALBatches++
			rs.WALSpans += len(b.Spans)
			if apply != nil {
				apply(b)
			}
		}
	}
	s.tornTail.Store(int64(rs.TornTailDropped))
	s.replayWALBatch.Store(int64(rs.WALBatches))
	s.replayWALSpans.Store(int64(rs.WALSpans))
	s.memSpans.Store(int64(len(s.mem.spans)))

	// Open a fresh active segment past everything on disk. Replayed live
	// segments stay on disk beneath it until the next seal covers them.
	activeSeq := maxSeq + 1
	w, err := createWAL(dir, activeSeq)
	if err != nil {
		return nil, rs, err
	}
	s.wal = w
	if len(live) > 0 {
		s.walFrom = live[0]
	} else {
		s.walFrom = activeSeq
	}
	s.walBytes.Store(s.liveWAL + w.bytes)
	s.walSegments.Store(int64(len(live) + 1))
	s.recomputeDebtLocked()
	return s, rs, nil
}

// Append durably logs one wire-encoded batch (payload) and stages its
// decoded rows (b) in the memtable, sealing when a threshold trips. The
// WAL write happens before the rows become queryable; a WAL write error is
// counted and ingest continues in-memory (availability over durability).
func (s *Shard) Append(payload []byte, b *transport.Batch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("dstore: append on closed shard")
	}
	if err := s.wal.append(payload, s.cfg); err != nil {
		s.walAppendErrors.Add(1)
	}
	s.mem.spans = append(s.mem.spans, b.Spans...)
	s.mem.flows = append(s.mem.flows, b.Flows...)
	s.mem.profiles = append(s.mem.profiles, b.Profiles...)
	s.memSpans.Store(int64(len(s.mem.spans)))
	s.walBytes.Store(s.liveWAL + s.wal.bytes)
	if len(s.mem.spans) >= s.cfg.SealSpans || s.liveWAL+s.wal.bytes >= s.cfg.SealBytes {
		return s.sealLocked()
	}
	return nil
}

// sealLocked flushes the memtable into a new immutable block covering
// every live WAL segment, then retires those segments. Callers hold mu.
func (s *Shard) sealLocked() error {
	if len(s.mem.spans) == 0 && len(s.mem.flows) == 0 && len(s.mem.profiles) == 0 {
		return nil
	}
	walFirst, walLast := s.walFrom, s.wal.seq
	data := marshalBlock(walFirst, walLast, s.mem.spans, s.mem.flows, s.mem.profiles, s.cfg.Encoding)
	h, err := s.writeBlockLocked(walFirst, walLast, data, len(s.mem.spans), len(s.mem.flows), len(s.mem.profiles))
	if err != nil {
		return err
	}
	s.blocks = append(s.blocks, h)
	s.sealedBytes.Add(h.bytes)
	s.nBlocks.Add(1)

	// The block is durable; the WAL segments it covers are dead weight.
	if err := s.wal.close(false); err != nil {
		return fmt.Errorf("dstore: seal: close wal: %w", err)
	}
	for seq := walFirst; seq <= walLast; seq++ {
		_ = os.Remove(filepath.Join(s.dir, walName(seq)))
	}
	syncDir(s.dir)
	w, err := createWAL(s.dir, walLast+1)
	if err != nil {
		return err
	}
	s.wal = w
	s.walFrom = w.seq
	s.liveWAL = 0
	s.mem.reset()
	s.memSpans.Store(0)
	s.walBytes.Store(w.bytes)
	s.walSegments.Store(1)
	s.recomputeDebtLocked()
	return nil
}

// writeBlockLocked persists a marshaled block image via tmp+rename and
// returns its handle. Callers hold mu. minNS/maxNS come from the image so
// handle metadata always matches what a reopen would decode.
func (s *Shard) writeBlockLocked(walFirst, walLast uint64, data []byte, nSpans, nFlows, nProfiles int) (*blockHandle, error) {
	minNS, maxNS, err := peekBlockRange(data)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(s.dir, blockName(walFirst, walLast))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return nil, fmt.Errorf("dstore: write block: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		_ = f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("dstore: publish block: %w", err)
	}
	syncDir(s.dir)
	return &blockHandle{
		path: path, walFirst: walFirst, walLast: walLast,
		bytes: int64(len(data)), spans: nSpans, flows: nFlows,
		profiles: nProfiles, minNS: minNS, maxNS: maxNS,
	}, nil
}

// peekBlockRange reads just the span time range out of a block header.
func peekBlockRange(data []byte) (minNS, maxNS int64, err error) {
	r := trace.WireReader{Data: data, Pos: 4}
	r.Uvarint() // walFirst
	r.Uvarint() // walLast
	r.Uvarint() // nSpans
	r.Uvarint() // nFlows
	r.Uvarint() // nProfiles
	minNS = r.Varint()
	maxNS = r.Varint()
	if r.Err != nil {
		return 0, 0, fmt.Errorf("dstore: block header: %w", r.Err)
	}
	return minNS, maxNS, nil
}

// BlockInfo describes one sealed block for scans and tests.
type BlockInfo struct {
	Path              string
	WALFirst, WALLast uint64
	Bytes             int64
	Spans             int
	Flows             int
	Profiles          int
	MinNS, MaxNS      int64
}

// Scan visits every sealed block in walFirst order, decoding each outside
// the shard lock (handles are refcounted so a concurrent compaction or
// eviction cannot delete a file mid-read), then the memtable tail. The
// visitor must not retain the row slices past its return.
func (s *Shard) Scan(visit func(info BlockInfo, spans []*trace.Span, flows []transport.FlowSample, profiles []profiling.Sample) error) error {
	s.mu.Lock()
	handles := make([]*blockHandle, len(s.blocks))
	copy(handles, s.blocks)
	for _, h := range handles {
		h.refs++
	}
	s.mu.Unlock()
	defer s.releaseHandles(handles)

	for _, h := range handles {
		data, err := os.ReadFile(h.path)
		if err != nil {
			return fmt.Errorf("dstore: scan: %w", err)
		}
		meta, spans, flows, profiles, err := unmarshalBlock(data)
		if err != nil {
			return fmt.Errorf("dstore: scan %s: %w", filepath.Base(h.path), err)
		}
		info := BlockInfo{
			Path: h.path, WALFirst: meta.walFirst, WALLast: meta.walLast,
			Bytes: int64(len(data)), Spans: meta.nSpans, Flows: meta.nFlows,
			Profiles: meta.nProfiles, MinNS: meta.minNS, MaxNS: meta.maxNS,
		}
		if err := visit(info, spans, flows, profiles); err != nil {
			return err
		}
	}

	s.mu.Lock()
	memSpans := make([]*trace.Span, len(s.mem.spans))
	copy(memSpans, s.mem.spans)
	memFlows := make([]transport.FlowSample, len(s.mem.flows))
	copy(memFlows, s.mem.flows)
	memProfiles := make([]profiling.Sample, len(s.mem.profiles))
	copy(memProfiles, s.mem.profiles)
	s.mu.Unlock()
	if len(memSpans) > 0 || len(memFlows) > 0 || len(memProfiles) > 0 {
		minNS, maxNS := spanTimeRange(memSpans)
		info := BlockInfo{Path: "(memtable)", Spans: len(memSpans), Flows: len(memFlows), Profiles: len(memProfiles), MinNS: minNS, MaxNS: maxNS}
		return visit(info, memSpans, memFlows, memProfiles)
	}
	return nil
}

// Blocks returns metadata for every live sealed block, in walFirst order.
func (s *Shard) Blocks() []BlockInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]BlockInfo, 0, len(s.blocks))
	for _, h := range s.blocks {
		infos = append(infos, BlockInfo{
			Path: h.path, WALFirst: h.walFirst, WALLast: h.walLast,
			Bytes: h.bytes, Spans: h.spans, Flows: h.flows,
			Profiles: h.profiles, MinNS: h.minNS, MaxNS: h.maxNS,
		})
	}
	return infos
}

// releaseHandles drops scan references, deleting any file whose handle
// died (compacted away or evicted) while the scan held it.
func (s *Shard) releaseHandles(handles []*blockHandle) {
	s.mu.Lock()
	var remove []string
	for _, h := range handles {
		h.refs--
		if h.dead && h.refs == 0 {
			remove = append(remove, h.path)
		}
	}
	s.mu.Unlock()
	for _, path := range remove {
		_ = os.Remove(path)
	}
}

// EvictBefore drops every sealed block whose newest span is older than
// cutoffNS — whole-file eviction at block granularity, the ClickHouse
// TTL-by-part story. Memtable rows are never evicted directly; they age
// into blocks at the next seal and fall out then. Returns blocks and spans
// evicted.
func (s *Shard) EvictBefore(cutoffNS int64) (blocks, spans int) {
	s.mu.Lock()
	var remove []string
	kept := s.blocks[:0]
	for _, h := range s.blocks {
		if h.spans > 0 && h.maxNS < cutoffNS {
			blocks++
			spans += h.spans
			s.sealedBytes.Add(-h.bytes)
			s.nBlocks.Add(-1)
			h.dead = true
			if h.refs == 0 {
				remove = append(remove, h.path)
			}
			continue
		}
		kept = append(kept, h)
	}
	s.blocks = kept
	s.evictedBlocks.Add(int64(blocks))
	s.evictedSpans.Add(int64(spans))
	s.recomputeDebtLocked()
	s.mu.Unlock()
	for _, path := range remove {
		_ = os.Remove(path)
	}
	if blocks > 0 {
		syncDir(s.dir)
	}
	return blocks, spans
}

// Close seals the memtable and syncs everything — the clean-shutdown path.
// A reopen after Close replays zero WAL batches.
func (s *Shard) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.sealLocked(); err != nil {
		_ = s.wal.close(false)
		return err
	}
	// The active segment is empty (seal recreated it, or nothing was ever
	// written); remove it so a clean directory holds only blocks.
	if err := s.wal.close(true); err != nil {
		return err
	}
	if s.wal.bytes == walHeaderSize {
		_ = os.Remove(s.wal.path)
		syncDir(s.dir)
		s.walBytes.Store(0)
		s.walSegments.Store(0)
	}
	return nil
}

// Abort closes file handles WITHOUT sealing or syncing — the crash
// simulation used by kill-and-replay tests. Whatever the OS already has of
// the WAL is what recovery gets.
func (s *Shard) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	_ = s.wal.close(false)
}

// DiskBytes is the shard's true on-disk footprint: live WAL bytes plus
// sealed block bytes. Safe to call concurrently with ingest.
func (s *Shard) DiskBytes() int64 { return s.walBytes.Load() + s.sealedBytes.Load() }

// Stats snapshots the shard's tier counters.
func (s *Shard) Stats() Stats {
	return Stats{
		WALBytes:         s.walBytes.Load(),
		WALSegments:      s.walSegments.Load(),
		SealedBytes:      s.sealedBytes.Load(),
		Blocks:           s.nBlocks.Load(),
		MemSpans:         s.memSpans.Load(),
		Compactions:      s.compactions.Load(),
		CompactionDebt:   s.compactionDebt.Load(),
		EvictedBlocks:    s.evictedBlocks.Load(),
		EvictedSpans:     s.evictedSpans.Load(),
		TornTailDropped:  s.tornTail.Load(),
		WALAppendErrors:  s.walAppendErrors.Load(),
		ReplayWALBatches: s.replayWALBatch.Load(),
		ReplayWALSpans:   s.replayWALSpans.Load(),
		ReplayBlockSpans: s.replayBlkSpans.Load(),
	}
}

package dstore

// The write-ahead log: one segment file per seal interval, CRC-framed
// records whose payload is the raw wire-encoded batch the ingest worker
// received. Framing is [uint32 LE length][uint32 LE CRC32(payload)]
// [payload] after a 5-byte header. Recovery rules (the classic WAL
// contract, tested explicitly):
//
//   - an incomplete or CRC-bad record that ends exactly at EOF is a torn
//     write from a crash mid-append: dropped, earlier records replay;
//   - a CRC mismatch with more bytes after it is silent corruption in the
//     middle of the log: a hard error, because everything behind it is
//     suspect too.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	walVersion    = 1
	walHeaderSize = 5 // "DFWL" + version byte
	walFrameSize  = 8 // uint32 length + uint32 crc
)

var walMagic = [4]byte{'D', 'F', 'W', 'L'}

// walName returns the segment filename for a sequence number.
func walName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseWALName extracts the sequence number from a segment filename.
func parseWALName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%d.log", &seq); n == 1 && err == nil && filepath.Ext(name) == ".log" {
		return seq, true
	}
	return 0, false
}

// walWriter is one open segment. Callers (Shard) serialize access.
type walWriter struct {
	f     *os.File
	path  string
	seq   uint64
	bytes int64 // total bytes written to this segment, header included
	dirty int   // bytes appended since the last fsync
}

// createWAL opens a fresh segment with the given sequence number.
func createWAL(dir string, seq uint64) (*walWriter, error) {
	path := filepath.Join(dir, walName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dstore: create wal segment: %w", err)
	}
	hdr := append(walMagic[:], walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("dstore: write wal header: %w", err)
	}
	return &walWriter{f: f, path: path, seq: seq, bytes: walHeaderSize, dirty: walHeaderSize}, nil
}

// append frames and writes one record, fsyncing per the policy.
func (w *walWriter) append(payload []byte, cfg Config) error {
	frame := make([]byte, walFrameSize, walFrameSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("dstore: wal append: %w", err)
	}
	w.bytes += int64(len(frame))
	w.dirty += len(frame)
	switch cfg.Sync {
	case SyncAlways:
		return w.sync()
	case SyncGroup:
		if w.dirty >= cfg.GroupBytes {
			return w.sync()
		}
	}
	return nil
}

// sync flushes the segment to stable storage (group commit point).
func (w *walWriter) sync() error {
	if w.dirty == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dstore: wal sync: %w", err)
	}
	w.dirty = 0
	return nil
}

// close finishes the segment; when sync is true it is flushed first (the
// clean-shutdown path). The crash-simulation path (Shard.Abort) passes
// false: whatever the OS has is what recovery gets.
func (w *walWriter) close(sync bool) error {
	if sync {
		if err := w.sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// readWALSegment replays one segment file, returning the framed payloads
// in append order and the number of torn trailing records dropped (0 or 1
// — a torn write can only be the last record).
func readWALSegment(path string) (payloads [][]byte, torn int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("dstore: read wal segment: %w", err)
	}
	if len(data) < walHeaderSize || [4]byte(data[:4]) != walMagic {
		return nil, 0, fmt.Errorf("dstore: %s: not a wal segment", filepath.Base(path))
	}
	if data[4] != walVersion {
		return nil, 0, fmt.Errorf("dstore: %s: unsupported wal version %d", filepath.Base(path), data[4])
	}
	off := walHeaderSize
	for off < len(data) {
		if len(data)-off < walFrameSize {
			// Truncated frame header at EOF: torn write, drop.
			return payloads, 1, nil
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > len(data)-off-walFrameSize {
			// Record extends past EOF — only possible for the tail.
			return payloads, 1, nil
		}
		payload := data[off+walFrameSize : off+walFrameSize+length]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+walFrameSize+length == len(data) {
				// CRC-bad final record: torn write, drop.
				return payloads, 1, nil
			}
			return nil, 0, fmt.Errorf("dstore: %s: CRC mismatch at offset %d with %d bytes following — corrupt mid-file",
				filepath.Base(path), off, len(data)-(off+walFrameSize+length))
		}
		payloads = append(payloads, payload)
		off += walFrameSize + length
	}
	return payloads, 0, nil
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
// Best-effort on filesystems that reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

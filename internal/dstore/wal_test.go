package dstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func walPayloads(n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		out = append(out, []byte(fmt.Sprintf("payload-%03d-%s", i, string(bytes.Repeat([]byte{byte('a' + i%26)}, 20+i)))))
	}
	return out
}

func writeSegment(t *testing.T, dir string, cfg Config, payloads [][]byte) string {
	t.Helper()
	w, err := createWAL(dir, 1)
	if err != nil {
		t.Fatalf("createWAL: %v", err)
	}
	for _, p := range payloads {
		if err := w.append(p, cfg); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.close(true); err != nil {
		t.Fatalf("close: %v", err)
	}
	return w.path
}

func TestWALRoundTrip(t *testing.T) {
	for _, sync := range []SyncPolicy{SyncGroup, SyncAlways, SyncNever} {
		t.Run(sync.String(), func(t *testing.T) {
			dir := t.TempDir()
			want := walPayloads(7)
			path := writeSegment(t, dir, Config{Sync: sync, GroupBytes: 64}, want)
			got, torn, err := readWALSegment(path)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if torn != 0 {
				t.Fatalf("torn = %d on a clean segment", torn)
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d mismatch", i)
				}
			}
		})
	}
}

func TestWALTornTailDropped(t *testing.T) {
	// Every truncation point inside the final record must drop exactly that
	// record and keep the first two.
	dir := t.TempDir()
	want := walPayloads(3)
	path := writeSegment(t, dir, Config{Sync: SyncNever}, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// cut stops short of the full record: removing it entirely lands on a
	// record boundary, indistinguishable from a clean 2-record segment.
	lastLen := walFrameSize + len(want[2])
	for cut := 1; cut < lastLen; cut++ {
		trunc := filepath.Join(dir, fmt.Sprintf("wal-%08d.log", 100+cut))
		if err := os.WriteFile(trunc, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, torn, err := readWALSegment(trunc)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if torn != 1 {
			t.Fatalf("cut %d: torn = %d, want 1", cut, torn)
		}
		if len(got) != 2 || !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
			t.Fatalf("cut %d: earlier records did not survive", cut)
		}
	}
}

func TestWALCRCBadFinalRecordDropped(t *testing.T) {
	dir := t.TempDir()
	want := walPayloads(3)
	path := writeSegment(t, dir, Config{Sync: SyncNever}, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // corrupt last byte of the final payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn, err := readWALSegment(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if torn != 1 || len(got) != 2 {
		t.Fatalf("got %d records, torn=%d; want 2 records, torn=1", len(got), torn)
	}
}

func TestWALMidFileCorruptionIsHardError(t *testing.T) {
	dir := t.TempDir()
	want := walPayloads(3)
	path := writeSegment(t, dir, Config{Sync: SyncNever}, want)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the FIRST record's payload: records follow it, so
	// this is silent corruption, not a torn write.
	data[walHeaderSize+walFrameSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readWALSegment(path); err == nil {
		t.Fatal("mid-file CRC mismatch replayed without error")
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-00000001.log")
	if err := os.WriteFile(path, []byte("not a wal segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readWALSegment(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWALNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 42, 99999999} {
		got, ok := parseWALName(walName(seq))
		if !ok || got != seq {
			t.Fatalf("parseWALName(walName(%d)) = %d, %v", seq, got, ok)
		}
	}
	if _, ok := parseWALName("block-00000001-00000002.blk"); ok {
		t.Fatal("parsed a block name as a wal name")
	}
}

package dstore

// Sealed immutable blocks: the memtable's rows re-encoded columnarly, one
// file per seal. Integer span fields become storage columns (delta+varint
// under the default encoding — timestamps and sequential IDs delta to
// almost nothing), string fields become LowCardinality dictionary columns,
// and everything that is not naturally columnar — the custom label map,
// attached net metrics, flow and profile side-rows — is persisted in the
// exact trace/transport wire layout. A block file is:
//
//	"DFB" version | header varints | int columns | string columns |
//	per-span rest | flows | profiles | uint32 LE CRC32(all preceding)
//
// Columns carry no length prefix: storage.DecodeColumn reports how many
// bytes it consumed, the same cursor discipline as the wire codec.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"deepflow/internal/profiling"
	"deepflow/internal/storage"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

const blockVersion = 1

var blockMagic = [3]byte{'D', 'F', 'B'}

// blockName returns the block filename covering a WAL sequence range.
func blockName(walFirst, walLast uint64) string {
	return fmt.Sprintf("block-%08d-%08d.blk", walFirst, walLast)
}

// parseBlockName extracts the covered WAL range from a block filename.
func parseBlockName(name string) (walFirst, walLast uint64, ok bool) {
	if n, err := fmt.Sscanf(name, "block-%d-%d.blk", &walFirst, &walLast); n == 2 && err == nil {
		return walFirst, walLast, true
	}
	return 0, 0, false
}

// blockMeta is the header every block carries: its WAL coverage (which
// segments it makes deletable), row counts, the span time range (the zone
// map retention and scans prune on), and the column encoding.
type blockMeta struct {
	walFirst, walLast uint64
	nSpans            int
	nFlows            int
	nProfiles         int
	minNS, maxNS      int64
	enc               BlockEncoding
}

// spanIntCols defines the integer columns of a block's span section, in
// fixed serialization order. set closures run column-major in this order,
// so start_ns is applied before dur_ns reconstructs EndTime from it.
var spanIntCols = []struct {
	name string
	get  func(sp *trace.Span) int64
	set  func(sp *trace.Span, v int64)
}{
	{"span_id", func(sp *trace.Span) int64 { return int64(sp.ID) }, func(sp *trace.Span, v int64) { sp.ID = trace.SpanID(v) }},
	{"start_ns", func(sp *trace.Span) int64 { return sp.StartTime.UnixNano() }, func(sp *trace.Span, v int64) { sp.StartTime = time.Unix(0, v).UTC() }},
	{"dur_ns", func(sp *trace.Span) int64 { return int64(sp.EndTime.Sub(sp.StartTime)) }, func(sp *trace.Span, v int64) { sp.EndTime = sp.StartTime.Add(time.Duration(v)) }},
	{"systrace_id", func(sp *trace.Span) int64 { return int64(sp.SysTraceID) }, func(sp *trace.Span, v int64) { sp.SysTraceID = trace.SysTraceID(v) }},
	{"pseudo_thread", func(sp *trace.Span) int64 { return int64(sp.PseudoThreadID) }, func(sp *trace.Span, v int64) { sp.PseudoThreadID = uint64(v) }},
	{"req_tcp_seq", func(sp *trace.Span) int64 { return int64(sp.ReqTCPSeq) }, func(sp *trace.Span, v int64) { sp.ReqTCPSeq = uint32(v) }},
	{"resp_tcp_seq", func(sp *trace.Span) int64 { return int64(sp.RespTCPSeq) }, func(sp *trace.Span, v int64) { sp.RespTCPSeq = uint32(v) }},
	{"pid", func(sp *trace.Span) int64 { return int64(sp.PID) }, func(sp *trace.Span, v int64) { sp.PID = uint32(v) }},
	{"tid", func(sp *trace.Span) int64 { return int64(sp.TID) }, func(sp *trace.Span, v int64) { sp.TID = uint32(v) }},
	{"coroutine", func(sp *trace.Span) int64 { return int64(sp.CoroutineID) }, func(sp *trace.Span, v int64) { sp.CoroutineID = uint64(v) }},
	{"socket", func(sp *trace.Span) int64 { return int64(sp.Socket) }, func(sp *trace.Span, v int64) { sp.Socket = trace.SocketID(v) }},
	{"src_ip", func(sp *trace.Span) int64 { return int64(sp.Flow.SrcIP) }, func(sp *trace.Span, v int64) { sp.Flow.SrcIP = trace.IP(v) }},
	{"dst_ip", func(sp *trace.Span) int64 { return int64(sp.Flow.DstIP) }, func(sp *trace.Span, v int64) { sp.Flow.DstIP = trace.IP(v) }},
	{"src_port", func(sp *trace.Span) int64 { return int64(sp.Flow.SrcPort) }, func(sp *trace.Span, v int64) { sp.Flow.SrcPort = uint16(v) }},
	{"dst_port", func(sp *trace.Span) int64 { return int64(sp.Flow.DstPort) }, func(sp *trace.Span, v int64) { sp.Flow.DstPort = uint16(v) }},
	{"l4_proto", func(sp *trace.Span) int64 { return int64(sp.Flow.Proto) }, func(sp *trace.Span, v int64) { sp.Flow.Proto = trace.L4Proto(v) }},
	{"l7", func(sp *trace.Span) int64 { return int64(sp.L7) }, func(sp *trace.Span, v int64) { sp.L7 = trace.L7Proto(v) }},
	{"source", func(sp *trace.Span) int64 { return int64(sp.Source) }, func(sp *trace.Span, v int64) { sp.Source = trace.Source(v) }},
	{"tap_side", func(sp *trace.Span) int64 { return int64(sp.TapSide) }, func(sp *trace.Span, v int64) { sp.TapSide = trace.TapSide(v) }},
	{"response_code", func(sp *trace.Span) int64 { return int64(sp.ResponseCode) }, func(sp *trace.Span, v int64) { sp.ResponseCode = int32(v) }},
	{"vpc", func(sp *trace.Span) int64 { return int64(sp.Resource.VPCID) }, func(sp *trace.Span, v int64) { sp.Resource.VPCID = int32(v) }},
	{"ip", func(sp *trace.Span) int64 { return int64(sp.Resource.IP) }, func(sp *trace.Span, v int64) { sp.Resource.IP = trace.IP(v) }},
	{"pod", func(sp *trace.Span) int64 { return int64(sp.Resource.PodID) }, func(sp *trace.Span, v int64) { sp.Resource.PodID = int32(v) }},
	{"node", func(sp *trace.Span) int64 { return int64(sp.Resource.NodeID) }, func(sp *trace.Span, v int64) { sp.Resource.NodeID = int32(v) }},
	{"service", func(sp *trace.Span) int64 { return int64(sp.Resource.ServiceID) }, func(sp *trace.Span, v int64) { sp.Resource.ServiceID = int32(v) }},
	{"namespace", func(sp *trace.Span) int64 { return int64(sp.Resource.NSID) }, func(sp *trace.Span, v int64) { sp.Resource.NSID = int32(v) }},
	{"region", func(sp *trace.Span) int64 { return int64(sp.Resource.RegionID) }, func(sp *trace.Span, v int64) { sp.Resource.RegionID = int32(v) }},
	{"az", func(sp *trace.Span) int64 { return int64(sp.Resource.AZID) }, func(sp *trace.Span, v int64) { sp.Resource.AZID = int32(v) }},
	{"parent_id", func(sp *trace.Span) int64 { return int64(sp.ParentID) }, func(sp *trace.Span, v int64) { sp.ParentID = trace.SpanID(v) }},
}

// spanStrCols defines the string columns, in fixed order.
var spanStrCols = []struct {
	name string
	get  func(sp *trace.Span) string
	set  func(sp *trace.Span, v string)
}{
	{"x_request_id", func(sp *trace.Span) string { return sp.XRequestID }, func(sp *trace.Span, v string) { sp.XRequestID = v }},
	{"trace_id", func(sp *trace.Span) string { return sp.TraceID }, func(sp *trace.Span, v string) { sp.TraceID = v }},
	{"span_ref", func(sp *trace.Span) string { return sp.SpanRef }, func(sp *trace.Span, v string) { sp.SpanRef = v }},
	{"parent_span_ref", func(sp *trace.Span) string { return sp.ParentSpanRef }, func(sp *trace.Span, v string) { sp.ParentSpanRef = v }},
	{"process", func(sp *trace.Span) string { return sp.ProcessName }, func(sp *trace.Span, v string) { sp.ProcessName = v }},
	{"host", func(sp *trace.Span) string { return sp.HostName }, func(sp *trace.Span, v string) { sp.HostName = v }},
	{"request_type", func(sp *trace.Span) string { return sp.RequestType }, func(sp *trace.Span, v string) { sp.RequestType = v }},
	{"request_resource", func(sp *trace.Span) string { return sp.RequestResource }, func(sp *trace.Span, v string) { sp.RequestResource = v }},
	{"response_status", func(sp *trace.Span) string { return sp.ResponseStatus }, func(sp *trace.Span, v string) { sp.ResponseStatus = v }},
}

// colTypes maps a block encoding to its (int, string) storage column types.
func colTypes(enc BlockEncoding) (storage.ColumnType, storage.ColumnType) {
	intT, strT := storage.TypeInt64, storage.TypeLowCardinality
	if enc == EncDelta {
		intT = storage.TypeInt64Delta
	}
	if enc == EncDirect {
		strT = storage.TypeString
	}
	return intT, strT
}

// spanTimeRange returns the min/max StartTime over rows (zeros when empty).
func spanTimeRange(spans []*trace.Span) (minNS, maxNS int64) {
	for i, sp := range spans {
		ns := sp.StartTime.UnixNano()
		if i == 0 || ns < minNS {
			minNS = ns
		}
		if i == 0 || ns > maxNS {
			maxNS = ns
		}
	}
	return minNS, maxNS
}

// marshalBlock serializes rows into a block image covering the given WAL
// sequence range.
func marshalBlock(walFirst, walLast uint64, spans []*trace.Span, flows []transport.FlowSample, profiles []profiling.Sample, enc BlockEncoding) []byte {
	minNS, maxNS := spanTimeRange(spans)
	var b bytes.Buffer
	b.Write(blockMagic[:])
	b.WriteByte(blockVersion)
	hdr := binary.AppendUvarint(nil, walFirst)
	hdr = binary.AppendUvarint(hdr, walLast)
	hdr = binary.AppendUvarint(hdr, uint64(len(spans)))
	hdr = binary.AppendUvarint(hdr, uint64(len(flows)))
	hdr = binary.AppendUvarint(hdr, uint64(len(profiles)))
	hdr = binary.AppendVarint(hdr, minNS)
	hdr = binary.AppendVarint(hdr, maxNS)
	hdr = append(hdr, byte(enc))
	b.Write(hdr)

	intT, strT := colTypes(enc)
	for _, def := range spanIntCols {
		col := storage.NewColumn(intT)
		for _, sp := range spans {
			col.AppendInt(def.get(sp))
		}
		if _, err := col.WriteTo(&b); err != nil {
			panic("dstore: bytes.Buffer write failed: " + err.Error()) // cannot happen
		}
	}
	for _, def := range spanStrCols {
		col := storage.NewColumn(strT)
		for _, sp := range spans {
			col.AppendString(def.get(sp))
		}
		if _, err := col.WriteTo(&b); err != nil {
			panic("dstore: bytes.Buffer write failed: " + err.Error())
		}
	}
	var rest []byte
	for _, sp := range spans {
		rest = trace.AppendCustom(rest, sp.Custom)
		rest = trace.AppendNetMetrics(rest, sp.Net)
	}
	for i := range flows {
		rest = transport.AppendFlowSample(rest, &flows[i])
	}
	for i := range profiles {
		rest = transport.AppendProfileSample(rest, &profiles[i])
	}
	b.Write(rest)

	sum := crc32.ChecksumIEEE(b.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	b.Write(tail[:])
	return b.Bytes()
}

// unmarshalBlock verifies and decodes a block image.
func unmarshalBlock(data []byte) (blockMeta, []*trace.Span, []transport.FlowSample, []profiling.Sample, error) {
	var meta blockMeta
	if len(data) < 4+4 || [3]byte(data[:3]) != blockMagic {
		return meta, nil, nil, nil, fmt.Errorf("dstore: not a block file (%d bytes)", len(data))
	}
	if data[3] != blockVersion {
		return meta, nil, nil, nil, fmt.Errorf("dstore: unsupported block version %d", data[3])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return meta, nil, nil, nil, fmt.Errorf("dstore: block CRC mismatch")
	}

	r := trace.WireReader{Data: body, Pos: 4}
	meta.walFirst = r.Uvarint()
	meta.walLast = r.Uvarint()
	nSpans := r.Uvarint()
	nFlows := r.Uvarint()
	nProfiles := r.Uvarint()
	meta.minNS = r.Varint()
	meta.maxNS = r.Varint()
	meta.enc = BlockEncoding(r.Byte())
	if r.Err != nil {
		return meta, nil, nil, nil, fmt.Errorf("dstore: block header: %w", r.Err)
	}
	if nSpans+nFlows+nProfiles > uint64(len(body)) { // each row takes ≥1 byte somewhere
		return meta, nil, nil, nil, fmt.Errorf("dstore: block claims impossible row counts (%d/%d/%d in %d bytes)",
			nSpans, nFlows, nProfiles, len(body))
	}
	meta.nSpans, meta.nFlows, meta.nProfiles = int(nSpans), int(nFlows), int(nProfiles)

	spans := make([]*trace.Span, nSpans)
	for i := range spans {
		spans[i] = &trace.Span{}
	}
	intT, strT := colTypes(meta.enc)
	for _, def := range spanIntCols {
		col, n, err := storage.DecodeColumn(intT, len(spans), body[r.Pos:])
		if err != nil {
			return meta, nil, nil, nil, fmt.Errorf("dstore: block column %s: %w", def.name, err)
		}
		r.Pos += n
		for i, sp := range spans {
			def.set(sp, col.Int(i))
		}
	}
	for _, def := range spanStrCols {
		col, n, err := storage.DecodeColumn(strT, len(spans), body[r.Pos:])
		if err != nil {
			return meta, nil, nil, nil, fmt.Errorf("dstore: block column %s: %w", def.name, err)
		}
		r.Pos += n
		for i, sp := range spans {
			def.set(sp, col.Str(i))
		}
	}
	for _, sp := range spans {
		sp.Custom = r.Custom()
		sp.Net = r.NetMetrics()
	}
	var flows []transport.FlowSample
	for i := uint64(0); i < nFlows && r.Err == nil; i++ {
		flows = append(flows, transport.DecodeFlowSample(&r))
	}
	var profiles []profiling.Sample
	for i := uint64(0); i < nProfiles && r.Err == nil; i++ {
		profiles = append(profiles, transport.DecodeProfileSample(&r))
	}
	if r.Err != nil {
		return meta, nil, nil, nil, fmt.Errorf("dstore: block rows: %w", r.Err)
	}
	if r.Pos != len(body) {
		return meta, nil, nil, nil, fmt.Errorf("dstore: %d trailing bytes after block rows", len(body)-r.Pos)
	}
	return meta, spans, flows, profiles, nil
}

// EncodeBlock serializes rows into a standalone block image under enc —
// the probe behind the `dfbench storage` bytes/span sweep. The WAL range
// is zero: the image is for measurement and round-trip, not for a shard
// directory.
func EncodeBlock(spans []*trace.Span, flows []transport.FlowSample, profiles []profiling.Sample, enc BlockEncoding) []byte {
	return marshalBlock(0, 0, spans, flows, profiles, enc)
}

// DecodeBlock verifies and decodes a block image produced by EncodeBlock
// (or read from a shard directory).
func DecodeBlock(data []byte) ([]*trace.Span, []transport.FlowSample, []profiling.Sample, error) {
	_, spans, flows, profiles, err := unmarshalBlock(data)
	return spans, flows, profiles, err
}

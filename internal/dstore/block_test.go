package dstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"deepflow/internal/profiling"
	"deepflow/internal/trace"
	"deepflow/internal/transport"
)

// testSpan builds a fully-populated span; i varies every field so column
// round-trips can't pass by accident.
func testSpan(i int) *trace.Span {
	base := time.Unix(1700000000, 0).UTC()
	sp := &trace.Span{
		ID:             trace.SpanID(1000 + i),
		SysTraceID:     trace.SysTraceID(5000 + i/3),
		PseudoThreadID: uint64(77 + i),
		XRequestID:     fmt.Sprintf("xreq-%04d", i/2),
		ReqTCPSeq:      uint32(900000 + 13*i),
		RespTCPSeq:     uint32(910000 + 13*i),
		TraceID:        fmt.Sprintf("trace-%03d", i/3),
		SpanRef:        fmt.Sprintf("span-%04d", i),
		ParentSpanRef:  fmt.Sprintf("span-%04d", i-1),
		PID:            uint32(4000 + i%5),
		TID:            uint32(4100 + i%7),
		CoroutineID:    uint64(i * 31),
		ProcessName:    []string{"frontend", "backend", "db"}[i%3],
		Socket:         trace.SocketID(333000 + i),
		Flow: trace.FiveTuple{
			SrcIP: trace.IP(0x0a000001 + uint32(i)), DstIP: trace.IP(0x0a000100 + uint32(i%4)),
			SrcPort: uint16(30000 + i), DstPort: uint16(8080 + i%3), Proto: trace.L4TCP,
		},
		L7:              trace.L7Proto(1 + i%3),
		Source:          trace.Source(i % 3),
		TapSide:         trace.TapSide(i % 4),
		HostName:        []string{"node-1", "node-2"}[i%2],
		StartTime:       base.Add(time.Duration(i) * 10 * time.Millisecond),
		EndTime:         base.Add(time.Duration(i)*10*time.Millisecond + time.Duration(1+i%9)*time.Millisecond),
		RequestType:     []string{"GET", "POST", "QUERY"}[i%3],
		RequestResource: fmt.Sprintf("/api/v1/items/%d", i%6),
		ResponseCode:    int32(200 + 100*(i%3)),
		ResponseStatus:  []string{"ok", "error"}[i%2],
		Resource: trace.ResourceTags{
			VPCID: 7, IP: trace.IP(0x0a000001 + uint32(i)), PodID: int32(20 + i%4),
			NodeID: int32(2 + i%2), ServiceID: int32(11 + i%3), NSID: 3,
			RegionID: 1, AZID: int32(1 + i%2),
		},
		Net: trace.NetMetrics{
			Retransmissions: uint32(i % 3), Resets: uint32(i % 2), ZeroWindows: uint32(i % 5),
			RTT: time.Duration(100+i) * time.Microsecond, BytesSent: uint64(1500 * i),
			BytesReceived: uint64(900 * i), ARPRequests: uint32(i % 4),
		},
		ParentID: trace.SpanID(999 + i),
	}
	if i%3 != 0 {
		sp.Custom = map[string]string{"team": "payments", "zone": fmt.Sprintf("z%d", i%2)}
	}
	return sp
}

func testRows(n int) ([]*trace.Span, []transport.FlowSample, []profiling.Sample) {
	var spans []*trace.Span
	for i := 0; i < n; i++ {
		spans = append(spans, testSpan(i))
	}
	base := time.Unix(1700000000, 0).UTC()
	var flows []transport.FlowSample
	for i := 0; i < n/2; i++ {
		flows = append(flows, transport.FlowSample{
			TS: base.Add(time.Duration(i) * time.Second), Host: "node-1", NIC: "eth0",
			Tuple:         trace.FiveTuple{SrcIP: trace.IP(10 + uint32(i)), DstIP: 20, SrcPort: 1000, DstPort: 80, Proto: trace.L4UDP},
			Delta:         trace.NetMetrics{BytesSent: uint64(100 * i), RTT: time.Millisecond},
			KernelPackets: uint64(40 + i), KernelBytes: uint64(4000 + i),
		})
	}
	var profiles []profiling.Sample
	for i := 0; i < n/3; i++ {
		profiles = append(profiles, profiling.Sample{
			Host: "node-2", PID: uint32(4000 + i), ProcName: "backend",
			Stack: []string{"main", "handle", fmt.Sprintf("leaf%d", i)}, Count: uint64(3 + i),
			FirstNS: int64(1e9 + i), LastNS: int64(2e9 + i),
			Resource: trace.ResourceTags{VPCID: 7, IP: trace.IP(30 + uint32(i))},
		})
	}
	return spans, flows, profiles
}

// spanWire canonicalizes a span for comparison via its wire encoding.
func spanWire(sp *trace.Span) []byte { return trace.AppendSpan(nil, sp) }

func TestBlockRoundTripAllEncodings(t *testing.T) {
	spans, flows, profiles := testRows(30)
	for _, enc := range []BlockEncoding{EncDelta, EncDirect, EncLowCard} {
		t.Run(enc.String(), func(t *testing.T) {
			data := EncodeBlock(spans, flows, profiles, enc)
			gotSpans, gotFlows, gotProfiles, err := DecodeBlock(data)
			if err != nil {
				t.Fatalf("DecodeBlock: %v", err)
			}
			if len(gotSpans) != len(spans) || len(gotFlows) != len(flows) || len(gotProfiles) != len(profiles) {
				t.Fatalf("row counts %d/%d/%d, want %d/%d/%d",
					len(gotSpans), len(gotFlows), len(gotProfiles), len(spans), len(flows), len(profiles))
			}
			for i := range spans {
				if !bytes.Equal(spanWire(gotSpans[i]), spanWire(spans[i])) {
					t.Fatalf("span %d did not round-trip under %s", i, enc)
				}
			}
			for i := range flows {
				want := transport.AppendFlowSample(nil, &flows[i])
				got := transport.AppendFlowSample(nil, &gotFlows[i])
				if !bytes.Equal(got, want) {
					t.Fatalf("flow %d did not round-trip under %s", i, enc)
				}
			}
			for i := range profiles {
				want := transport.AppendProfileSample(nil, &profiles[i])
				got := transport.AppendProfileSample(nil, &gotProfiles[i])
				if !bytes.Equal(got, want) {
					t.Fatalf("profile %d did not round-trip under %s", i, enc)
				}
			}
		})
	}
}

func TestBlockMetaRange(t *testing.T) {
	spans, flows, profiles := testRows(12)
	data := marshalBlock(3, 9, spans, flows, profiles, EncDelta)
	meta, _, _, _, err := unmarshalBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.walFirst != 3 || meta.walLast != 9 {
		t.Fatalf("wal range %d-%d, want 3-9", meta.walFirst, meta.walLast)
	}
	if meta.nSpans != len(spans) || meta.nFlows != len(flows) || meta.nProfiles != len(profiles) {
		t.Fatalf("meta counts %d/%d/%d", meta.nSpans, meta.nFlows, meta.nProfiles)
	}
	wantMin := spans[0].StartTime.UnixNano()
	wantMax := spans[len(spans)-1].StartTime.UnixNano()
	if meta.minNS != wantMin || meta.maxNS != wantMax {
		t.Fatalf("time range [%d,%d], want [%d,%d]", meta.minNS, meta.maxNS, wantMin, wantMax)
	}
	minNS, maxNS, err := peekBlockRange(data)
	if err != nil || minNS != wantMin || maxNS != wantMax {
		t.Fatalf("peekBlockRange = [%d,%d], %v", minNS, maxNS, err)
	}
}

func TestBlockDeltaBeatsDirectOnSequentialData(t *testing.T) {
	// Timestamps and IDs in a block arrive nearly sorted, which is the
	// whole bet behind delta+varint columns.
	spans, flows, profiles := testRows(200)
	delta := len(EncodeBlock(spans, flows, profiles, EncDelta))
	direct := len(EncodeBlock(spans, flows, profiles, EncDirect))
	lowcard := len(EncodeBlock(spans, flows, profiles, EncLowCard))
	if delta >= direct {
		t.Fatalf("delta block (%d B) not smaller than direct (%d B)", delta, direct)
	}
	if delta >= lowcard {
		t.Fatalf("delta block (%d B) not smaller than low-cardinality (%d B)", delta, lowcard)
	}
}

func TestBlockCorruptionDetected(t *testing.T) {
	spans, flows, profiles := testRows(10)
	data := EncodeBlock(spans, flows, profiles, EncDelta)
	for _, mutate := range []func([]byte) []byte{
		func(d []byte) []byte { d[len(d)/2] ^= 0xff; return d }, // body flip
		func(d []byte) []byte { return d[:len(d)-3] },           // truncated
		func(d []byte) []byte { d[0] = 'X'; return d },          // bad magic
		func(d []byte) []byte { d[3] = 99; return d },           // bad version
	} {
		cp := append([]byte(nil), data...)
		if _, _, _, err := DecodeBlock(mutate(cp)); err == nil {
			t.Fatal("corrupt block decoded without error")
		}
	}
}

func TestBlockNameRoundTrip(t *testing.T) {
	first, last, ok := parseBlockName(blockName(7, 42))
	if !ok || first != 7 || last != 42 {
		t.Fatalf("parseBlockName(blockName(7,42)) = %d, %d, %v", first, last, ok)
	}
	if _, _, ok := parseBlockName("wal-00000007.log"); ok {
		t.Fatal("parsed a wal name as a block name")
	}
}

func TestBlockEmpty(t *testing.T) {
	data := EncodeBlock(nil, nil, nil, EncDelta)
	spans, flows, profiles, err := DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans)+len(flows)+len(profiles) != 0 {
		t.Fatal("empty block decoded rows")
	}
}

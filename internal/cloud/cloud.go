// Package cloud models the cloud-platform resource metadata DeepFlow's
// server gathers directly (paper §3.4, Fig. 8 step ③): regions,
// availability zones, and VPCs, keyed by host.
package cloud

// Placement is one host's cloud-resource placement.
type Placement struct {
	Region string
	AZ     string
	VPC    string
	VPCID  int32
}

// Registry maps host names to placements.
type Registry struct {
	byHost map[string]Placement
	vpcIDs map[string]int32
	nextID int32
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byHost: make(map[string]Placement), vpcIDs: make(map[string]int32)}
}

// Place records a host's placement and returns its VPC's integer ID (the
// tag agents inject during smart-encoding phase 1).
func (r *Registry) Place(host, region, az, vpc string) int32 {
	id, ok := r.vpcIDs[vpc]
	if !ok {
		r.nextID++
		id = r.nextID
		r.vpcIDs[vpc] = id
	}
	r.byHost[host] = Placement{Region: region, AZ: az, VPC: vpc, VPCID: id}
	return id
}

// Lookup returns a host's placement.
func (r *Registry) Lookup(host string) (Placement, bool) {
	p, ok := r.byHost[host]
	return p, ok
}

// VPCID returns the integer ID for a VPC name (0 if unknown).
func (r *Registry) VPCID(vpc string) int32 { return r.vpcIDs[vpc] }

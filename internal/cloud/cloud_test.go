package cloud

import "testing"

func TestPlaceAndLookup(t *testing.T) {
	r := NewRegistry()
	id1 := r.Place("node-1", "us-east", "us-east-1a", "vpc-a")
	id2 := r.Place("node-2", "us-east", "us-east-1b", "vpc-a")
	id3 := r.Place("node-3", "eu-west", "eu-west-1a", "vpc-b")
	if id1 == 0 || id1 != id2 {
		t.Fatalf("same VPC got different ids: %d %d", id1, id2)
	}
	if id3 == id1 {
		t.Fatal("different VPCs share an id")
	}
	p, ok := r.Lookup("node-3")
	if !ok || p.Region != "eu-west" || p.AZ != "eu-west-1a" || p.VPC != "vpc-b" || p.VPCID != id3 {
		t.Fatalf("lookup = %+v %v", p, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown host found")
	}
	if r.VPCID("vpc-a") != id1 || r.VPCID("nope") != 0 {
		t.Fatal("VPCID lookups wrong")
	}
}

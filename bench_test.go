// Benchmarks regenerating the paper's evaluation tables and figures.
// One benchmark per table/figure; cmd/dfbench prints the same results as
// human-readable tables, and EXPERIMENTS.md records paper-vs-measured.
//
// Run everything:
//
//	go test -bench=. -benchmem .
package deepflow_test

import (
	"testing"
	"time"

	"deepflow/internal/agent"
	"deepflow/internal/core"
	"deepflow/internal/experiments"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/otelsdk"
	"deepflow/internal/server"
	"deepflow/internal/simkernel"
	"deepflow/internal/trace"
)

// BenchmarkFig13HookOverhead measures the per-event cost of each hook
// program (paper Fig. 13: 277–889 ns per event; ≤588 ns added per syscall).
func BenchmarkFig13HookOverhead(b *testing.B) {
	progs, err := agent.BuildPrograms(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]byte, simkernel.CtxSize)
	ctx := &simkernel.HookContext{
		PID: 1, TID: 2, ProcName: "bench", Socket: 3,
		ABI: simkernel.ABIWrite, Phase: simkernel.PhaseExit,
		Tuple:   trace.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: trace.L4TCP},
		DataLen: 40, Payload: []byte("GET /api/v1/items HTTP/1.1\r\nHost: x\r\n\r\n"),
	}
	cases := []struct {
		name string
		prog func() error
	}{
		{"empty-baseline", func() error { return progs.RunHook(progs.Empty, ctx, scratch) }},
		{"sys-enter", func() error { return progs.RunHook(progs.Enter, ctx, scratch) }},
		{"sys-exit", func() error {
			err := progs.RunHook(progs.Exit, ctx, scratch)
			progs.Perf.Drain()
			return err
		}},
		{"uprobe", func() error {
			err := progs.RunHook(progs.Uprobe, ctx, scratch)
			progs.Perf.Drain()
			return err
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := tc.prog(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14Encodings measures span ingestion under the three tag
// encodings (paper Fig. 14: smart-encoding saves 4.31×/7.79× CPU,
// ~2× memory, 3.9×/1.94× disk vs direct/low-cardinality).
func BenchmarkFig14Encodings(b *testing.B) {
	for _, enc := range []server.Encoding{server.EncodingSmart, server.EncodingDirect, server.EncodingLowCard} {
		b.Run(enc.String(), func(b *testing.B) {
			rows, err := experiments.MeasureEncodings(b.N+1000, 1000)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				if r.Encoding == enc {
					b.ReportMetric(float64(r.InsertNS)/float64(b.N+1000), "ns/span")
					b.ReportMetric(float64(r.DiskBytes)/float64(b.N+1000), "disk-B/span")
					b.ReportMetric(float64(r.MemBytes)/float64(b.N+1000), "mem-B/span")
				}
			}
		})
	}
}

// BenchmarkFig15Queries measures trace-assembly and span-list query delay
// (paper Fig. 15: trace ≈ 1 s, 15-minute span list ≈ 0.06 s on their
// testbed; shapes compare, absolute values are this store's).
func BenchmarkFig15Queries(b *testing.B) {
	reg := server.NewResourceRegistry(nil, nil)
	srv := server.New(reg, server.EncodingSmart)
	starts := experiments.PopulateQueryStore(srv, 2000, 12)

	b.Run("trace-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := srv.Trace(starts[i%len(starts)])
			if tr == nil || tr.Len() == 0 {
				b.Fatal("empty trace")
			}
		}
	})
	b.Run("span-list-15min", func(b *testing.B) {
		from := experiments.QueryEpoch()
		for i := 0; i < b.N; i++ {
			srv.SpanList(from, from.Add(15*time.Minute), 1000)
		}
	})
}

// benchWorkload runs one end-to-end workload configuration per iteration
// and reports throughput and spans/trace.
func benchWorkload(b *testing.B, workload string, system experiments.TracingSystem, rate float64) {
	var totalRPS, totalSpans float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig16(experiments.Fig16Config{
			Workload: workload,
			Rates:    []float64{rate},
			Duration: time.Second,
			Conns:    16,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == system {
				totalRPS += r.Throughput
				totalSpans += r.SpansPer
			}
		}
	}
	b.ReportMetric(totalRPS/float64(b.N), "rps")
	b.ReportMetric(totalSpans/float64(b.N), "spans/trace")
}

// BenchmarkFig16aSpringBoot compares baseline, Jaeger-like, and DeepFlow on
// the Spring Boot chain (paper Fig. 16(a): 1420 → 1360 → 1320 RPS; 4 vs 18
// spans per trace).
func BenchmarkFig16aSpringBoot(b *testing.B) {
	for _, system := range []experiments.TracingSystem{
		experiments.SystemBaseline, experiments.SystemJaeger, experiments.SystemDeepFlow,
	} {
		b.Run(string(system), func(b *testing.B) { benchWorkload(b, "springboot", system, 6000) })
	}
}

// BenchmarkFig16bBookinfo compares baseline, Zipkin-like, and DeepFlow on
// Bookinfo (paper Fig. 16(b): 670 → 650 → 640 RPS; 6 vs 38 spans/trace).
func BenchmarkFig16bBookinfo(b *testing.B) {
	for _, system := range []experiments.TracingSystem{
		experiments.SystemBaseline, experiments.SystemZipkin, experiments.SystemDeepFlow,
	} {
		b.Run(string(system), func(b *testing.B) { benchWorkload(b, "bookinfo", system, 3000) })
	}
}

// BenchmarkFig19Nginx compares baseline, eBPF-only, and the full agent on
// the single-VM Nginx workload (paper Fig. 19: 44k → 31k → 27k RPS).
func BenchmarkFig19Nginx(b *testing.B) {
	for _, scenario := range []string{"baseline", "ebpf", "agent"} {
		b.Run(scenario, func(b *testing.B) {
			var totalRPS float64
			var totalP90 time.Duration
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFig19([]float64{60000}, time.Second, 32)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Scenario == scenario {
						totalRPS += r.Throughput
						totalP90 += r.P90
					}
				}
			}
			b.ReportMetric(totalRPS/float64(b.N), "rps")
			b.ReportMetric(float64(totalP90.Milliseconds())/float64(b.N), "p90-ms")
		})
	}
}

// BenchmarkFig2FaultLocalization runs the failure-class injection matrix
// (survey Fig. 2 backed by fault injection).
func BenchmarkFig2FaultLocalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Correct {
				b.Fatalf("class %s not localized", r.Class)
			}
		}
	}
}

// BenchmarkTraceAssembly isolates Algorithm 1 on a live workload's spans —
// the core of the paper's rapid problem location.
func BenchmarkTraceAssembly(b *testing.B) {
	env := microsim.NewEnv(1)
	topo := microsim.BuildSpringBootDemo(env, nil)
	d := core.NewDeployment(env, []*k8s.Cluster{topo.Cluster}, nil, core.DefaultOptions())
	if err := d.DeployAll(); err != nil {
		b.Fatal(err)
	}
	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 8, 200)
	gen.Start(2 * time.Second)
	env.Run(3 * time.Second)
	d.FlushAll()
	spans := d.Server.SpanList(experiments.QueryEpoch(), experiments.QueryEpoch().Add(time.Hour), 0)
	var starts []trace.SpanID
	for _, sp := range spans {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess {
			starts = append(starts, sp.ID)
		}
	}
	if len(starts) == 0 {
		b.Fatal("no start spans")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := d.Server.Trace(starts[i%len(starts)])
		if tr.Len() < 15 {
			b.Fatalf("trace len %d", tr.Len())
		}
	}
}

// BenchmarkInstrumentationBaseline measures the intrusive SDK's span
// start/finish path — what every instrumented handler pays per request
// (context for Fig. 3 / Fig. 9's developer burden).
func BenchmarkInstrumentationBaseline(b *testing.B) {
	sdk := otelsdk.NewSDK("jaeger", otelsdk.PropagationW3C, 0, 1)
	t0 := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		span := sdk.StartSpan(otelsdk.SpanContext{}, "server", "svc", "/r", "h", "p", t0)
		headers := map[string]string{}
		sdk.Inject(span.Context(), headers)
		sdk.Extract(headers)
		span.Finish(t0, 200, "ok")
	}
}

module deepflow

go 1.22

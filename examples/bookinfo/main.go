// Bookinfo: the paper's Fig. 16(b) workload — Istio Bookinfo with Envoy
// sidecars — traced simultaneously by a Zipkin-like intrusive SDK (which
// only sees the two instrumented services) and by DeepFlow (which sees
// everything, including the closed-source sidecars and the network path).
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/otelsdk"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(7)

	// Zipkin-like SDK: productpage and reviews are instrumented by hand;
	// details, ratings, and every Envoy sidecar are blind spots.
	zipkin := otelsdk.NewSDK("zipkin", otelsdk.PropagationB3, 8*time.Microsecond, 1)
	topo := microsim.BuildBookinfo(env, zipkin)

	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 8, 100)
	gen.Path = "/productpage"
	gen.Start(2 * time.Second)
	env.Run(3 * time.Second)
	df.FlushAll()

	fmt.Printf("completed: %d requests\n\n", gen.Completed)
	fmt.Printf("Zipkin (intrusive): %.1f spans/trace across %d traces\n",
		zipkin.Collector.AvgSpansPerTrace(), zipkin.Collector.Traces())

	for _, sp := range df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0) {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess && sp.ResponseStatus == "ok" {
			tr := df.Server.Trace(sp.ID)
			fmt.Printf("DeepFlow (zero code): %d spans for the same kind of request\n\n", tr.Len())
			// Show which components only DeepFlow saw.
			seen := map[string]bool{}
			for _, s := range tr.Spans {
				if s.ProcessName != "" {
					seen[s.ProcessName] = true
				}
			}
			fmt.Println("components visible to DeepFlow:")
			for name := range seen {
				fmt.Printf("  - %s\n", name)
			}
			fmt.Println("\ncomponents visible to Zipkin: productpage, reviews (instrumented only)")
			break
		}
	}
}

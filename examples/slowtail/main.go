// slowtail walks the full latency-attribution drill: a tail regression
// ships (every 16th request through the backend picks up 12 ms), the
// detection plane fires latency-regression — not cpu-hog, because the mean
// barely moves — and the alert arrives with the dominant hop already named
// from the slowest exemplar's exact critical-path breakdown. No dashboards,
// no queries, no instrumentation.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"deepflow"
	"deepflow/internal/alerting"
	"deepflow/internal/faults"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
)

func main() {
	env := deepflow.NewEnv(233)
	topo := microsim.BuildSpringBootDemo(env, nil)

	opts := deepflow.DefaultOptions()
	cfg := alerting.DefaultConfig()
	opts.Alerting = &cfg
	opts.FlushInterval = time.Second
	opts.Agent.SessionWindow = time.Second

	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, opts)
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d agents; detection plane armed\n", df.Agents())

	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 4, 40)
	gen.Path = "/api/items"
	gen.Start(13 * time.Second)

	// Eight seconds of healthy traffic warm the mean AND tail baselines.
	env.Run(8 * time.Second)
	fmt.Printf("T+8s: baselines warm, %d alerts\n", len(df.Alerts.Alerts()))

	// The regression: every 16th request through the backend takes an extra
	// 12 ms — a cold cache key, a slow shard. The mean stays in band (cpu-hog
	// never fires); only the bucket max betrays it.
	faults.InjectSlowTail(env.Component("sb-backend"), 16, 12*time.Millisecond)
	fmt.Println("T+8s: a tail regression ships — every 16th backend request +12ms")

	env.Run(6 * time.Second)
	df.FlushAll()

	fmt.Println("\nself-raised alert stream:")
	if err := df.Alerts.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same drill the alert's suspect line ran: slowest retained exemplar
	// → assembled trace → exact breakdown → dominant hop.
	loc := faults.LocalizeLatencyRegression(df.Server, "front", sim.Epoch, env.Eng.Now())
	if !loc.Conclusive() {
		log.Fatal("no exemplar retained for endpoint front")
	}
	fmt.Printf("\nslowest exemplar: span #%d (%v total); dominant hop %q spends %v in [%s]\n",
		loc.SpanID, loc.TraceDur, loc.Hop, loc.Self, loc.Category)

	// And the evidence itself: the exemplar's waterfall, segments summing
	// exactly to the root wall time, critical path starred.
	bd := df.Server.TraceBreakdown(loc.SpanID)
	fmt.Printf("\nexact latency attribution (sum=%v, root=%v, exact=%v):\n",
		bd.Sum(), bd.Total, bd.Exact())
	if err := bd.WriteWaterfall(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// customproto shows DeepFlow's user-supplied protocol specifications
// (paper §3.3.1): a company's proprietary wire protocol — unknown to the
// built-in codecs — becomes fully traceable by registering one Codec with
// the agents. No change to the application, as always.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/protocols"
	"deepflow/internal/sim"
	"deepflow/internal/simkernel"
	"deepflow/internal/simnet"
	"deepflow/internal/trace"
)

// fixpCodec parses "FIXP", a fictional fixed-income trading protocol:
//
//	0: magic "FXP1"
//	4: u8 kind (1 = order, 2 = ack)
//	5: u32 order id
//	9: u8 symbol len, symbol      (orders)
//	9: u8 status (0 = filled)     (acks)
type fixpCodec struct{}

func (fixpCodec) Proto() trace.L7Proto { return trace.L7Proto(200) }

func (fixpCodec) Infer(p []byte) bool {
	return len(p) >= 9 && string(p[:4]) == "FXP1"
}

func (fixpCodec) Parse(p []byte) (protocols.Message, error) {
	if len(p) < 9 || string(p[:4]) != "FXP1" {
		return protocols.Message{}, fmt.Errorf("not FIXP")
	}
	msg := protocols.Message{
		Proto:    trace.L7Proto(200),
		StreamID: uint64(binary.BigEndian.Uint32(p[5:])),
		TotalLen: len(p),
	}
	switch p[4] {
	case 1:
		msg.Type = trace.MsgRequest
		msg.Method = "ORDER"
		n := int(p[9])
		if 10+n <= len(p) {
			msg.Resource = string(p[10 : 10+n])
		}
	case 2:
		msg.Type = trace.MsgResponse
		if p[9] == 0 {
			msg.Status = "ok"
		} else {
			msg.Status = "error"
			msg.Code = int32(p[9])
		}
	}
	return msg, nil
}

func order(id uint32, symbol string) []byte {
	b := []byte("FXP1\x01")
	b = binary.BigEndian.AppendUint32(b, id)
	b = append(b, byte(len(symbol)))
	return append(b, symbol...)
}

func ack(id uint32, status byte) []byte {
	b := []byte("FXP1\x02")
	b = binary.BigEndian.AppendUint32(b, id)
	return append(b, status)
}

func main() {
	env := deepflow.NewEnv(11)
	cluster := k8s.NewCluster("trading", env.Net)
	machine := env.Net.AddHost("m1", simnet.KindMachine, nil)
	node := cluster.AddNode("n1", machine)
	clientPod, _ := cluster.AddPod("oms-0", "default", "oms", node, nil)
	exchPod, _ := cluster.AddPod("exchange-gw-0", "default", "exchange-gw", node, nil)

	// Register the proprietary codec with every agent.
	opts := deepflow.DefaultOptions()
	opts.Agent.ExtraCodecs = []protocols.Codec{fixpCodec{}}
	df := deepflow.New(env, []*k8s.Cluster{cluster}, nil, opts)
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	// A closed-source exchange gateway speaking FIXP.
	exch := exchPod.Host.Kernel.NewProcess("exchange-gw")
	env.Net.Listen(exchPod.Host, 9001, exch, simkernel.DefaultABIProfile,
		func(sock *simkernel.Socket, conn *simnet.Conn) {
			th := exch.Threads()[0]
			var loop func()
			loop = func() {
				exchPod.Host.Kernel.Read(th, sock, func(d simkernel.Delivered) {
					if d.Err != nil || len(d.Payload) < 9 {
						return
					}
					id := binary.BigEndian.Uint32(d.Payload[5:])
					exchPod.Host.Kernel.Send(th, sock, ack(id, 0), nil)
					loop()
				})
			}
			loop()
		})

	// The order-management client fires three orders.
	oms := clientPod.Host.Kernel.NewProcess("oms")
	th := oms.Threads()[0]
	env.Net.Dial(clientPod.Host, oms, simkernel.DefaultABIProfile, exchPod.Host.IP, 9001,
		func(sock *simkernel.Socket, conn *simnet.Conn, err error) {
			if err != nil {
				log.Fatal(err)
			}
			symbols := []string{"UST10Y", "BUND", "JGB"}
			var next func(i int)
			next = func(i int) {
				if i >= len(symbols) {
					return
				}
				clientPod.Host.Kernel.Send(th, sock, order(uint32(100+i), symbols[i]), nil)
				clientPod.Host.Kernel.Read(th, sock, func(simkernel.Delivered) { next(i + 1) })
			}
			next(0)
		})
	env.Run(time.Second)
	df.FlushAll()

	fmt.Println("spans parsed from the proprietary FIXP protocol:")
	for _, sp := range df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0) {
		if sp.RequestType == "ORDER" && sp.Source == trace.SourceEBPF {
			fmt.Printf("  [%s] %s %s %s → %s (%.3fms)\n",
				sp.TapSide, sp.ProcessName, sp.RequestType, sp.RequestResource,
				sp.ResponseStatus, float64(sp.Duration().Microseconds())/1000)
		}
	}
}

// gatewaypath reproduces Appendix A: DeepFlow extends traces beyond
// applications to the full data-center path — client process ⇄ pod NIC ⇄
// node ⇄ physical machine ⇄ L4 gateway ⇄ machine ⇄ node ⇄ pod NIC ⇄ server
// process. The L4 gateway never terminates connections, so TCP sequence
// invariance carries the association straight through it.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/simnet"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(9)
	cluster := k8s.NewCluster("dc", env.Net)

	// Two racks: client side and server side, joined through an L4 load
	// balancer. The gateway is a pure forwarder (no process runs there),
	// but an agent on it taps its NIC — or a ToR switch mirror feeds a
	// dedicated capture machine, as Fig. 18 describes.
	machineA := env.Net.AddHost("rack-a", simnet.KindMachine, nil)
	machineB := env.Net.AddHost("rack-b", simnet.KindMachine, nil)
	lb := env.Net.AddHost("l4-gateway", simnet.KindGateway, nil)
	env.Net.SetRoute(machineA, machineB, lb)

	nodeA := cluster.AddNode("node-a", machineA)
	nodeB := cluster.AddNode("node-b", machineB)
	clientPod, _ := cluster.AddPod("web-client-0", "default", "web-client", nodeA, nil)
	apiPod, _ := cluster.AddPod("api-0", "default", "api", nodeB, nil)

	microsim.MustComponent(env, microsim.Config{
		Name: "api", Host: apiPod.Host, Port: 8080, Workers: 4,
		ServiceTime: sim.Const{D: 500 * time.Microsecond},
	})

	df := deepflow.New(env, []*k8s.Cluster{cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil { // includes the gateway host
		log.Fatal(err)
	}

	gen := microsim.NewLoadGen(env, "web-client", clientPod.Host, env.Component("api"), 4, 50)
	gen.Path = "/v1/query"
	gen.Start(time.Second)
	env.Run(2 * time.Second)
	df.FlushAll()

	for _, sp := range df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0) {
		if sp.ProcessName == "web-client" && sp.TapSide == trace.TapClientProcess && sp.ResponseStatus == "ok" {
			tr := df.Server.Trace(sp.ID)
			fmt.Printf("one request crossed the data center in %d spans:\n\n%s\n",
				tr.Len(), df.Server.FormatTrace(tr))
			for _, s := range tr.Spans {
				if s.TapSide == trace.TapGateway {
					fmt.Printf("the L4 gateway hop was captured at %s via TCP-sequence association\n", s.HostName)
				}
			}
			break
		}
	}
}

// nginx404 reproduces the paper's §4.1.1 case study: a live service is
// failing (one ingress pod returns 404); DeepFlow is deployed ON THE FLY —
// while the system keeps running, with zero code changes — and the faulty
// pod is localized from the traces within (virtual) seconds.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/faults"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
)

func main() {
	env := deepflow.NewEnv(3)
	topo := microsim.BuildBookinfo(env, nil)

	// The bug ships before anyone watches: the productpage ingress proxy
	// (our Nginx Ingress Control stand-in) starts answering 404.
	faults.InjectPodError(env.Component("productpage-envoy"), "/productpage", 404)

	gen := microsim.NewLoadGen(env, "client", topo.ClientHost, topo.Entry, 4, 80)
	gen.Path = "/productpage"
	gen.Start(6 * time.Second)

	// One second of failing traffic with NO observability deployed.
	env.Run(time.Second)
	fmt.Println("T+1s: users see timeouts/404s; nothing is instrumented")

	// Deploy DeepFlow mid-flight: no restarts, no code, no redeploys.
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}
	deployedAt := env.Eng.Now()
	fmt.Printf("T+1s: DeepFlow deployed on %d hosts while the service is live\n", df.Agents())

	env.Run(6 * time.Second)
	df.FlushAll()

	verdict := faults.LocalizeErrorSource(df.Server, deployedAt, env.Eng.Now())
	fmt.Printf("\nroot cause localized: pod %q (%d error spans)\n", verdict.Pod, verdict.Errors)
	fmt.Println("paper §4.1.1: \"within 15 minutes, the root cause is identified: one of the")
	fmt.Println("pods hosting Nginx Ingress Control in the cluster has an error, thus")
	fmt.Println("returning a 404 status code\" — without modifying a single line of code.")
}

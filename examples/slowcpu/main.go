// slowcpu demonstrates the continuous-profiling pillar: one Bookinfo pod
// burns CPU in a hot loop, so its spans are slow with no slow child and no
// error code to blame. Tracing alone localizes the pod; the on-CPU profile
// — collected by the same zero-code agent, tagged through the same
// smart-encoding path — names the function. This is the trace→profile
// correlation workflow the paper's §2.3.1 eBPF pillar enables.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/faults"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/server"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(11)
	topo := microsim.BuildBookinfo(env, nil)

	// The regression ships silently: details grows a 25ms hot loop per
	// request. No errors, no slow downstream calls — just burned CPU.
	faults.InjectCPUHog(env.Component("details"),
		sim.Const{D: 25 * time.Millisecond}, "details.handle.hotloop")

	// Deploy DeepFlow with the profiling plane on: perf-event sampling at
	// 99 Hz, stacks folded and shipped beside spans and flow metrics.
	opts := deepflow.DefaultOptions()
	opts.Agent.EnableProfiling = true
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, opts)
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeepFlow deployed on %d hosts, profiling at 99 Hz\n", df.Agents())

	gen := microsim.NewLoadGen(env, "client", topo.ClientHost, topo.Entry, 4, 30)
	gen.Path = "/productpage"
	gen.Start(2 * time.Second)
	env.Run(3 * time.Second)
	df.FlushAll()

	from, to := sim.Epoch, env.Eng.Now()

	// Step 1: the slowest entry span in the window, and its trace.
	slow := df.Server.SlowestSpans(from, to,
		server.SpanFilter{TapSide: trace.TapServerProcess}, 1)
	if len(slow) == 0 {
		log.Fatal("no spans captured")
	}
	tr := df.Server.Trace(slow[0].ID)
	fmt.Printf("\nslowest trace (%d spans):\n%s", len(tr.Spans), df.Server.FormatTrace(tr))

	// Step 2: self time finds the real hot hop — the span whose duration its
	// children do NOT explain.
	sp, self := server.TraceHotSpan(tr)
	d := df.Server.Decorate(sp)
	fmt.Printf("hot span: pod %q proc %q self-time %.1fms (duration %.1fms)\n",
		d.Tags.Pod, sp.ProcessName, ms(self), ms(sp.Duration()))

	// Step 3: correlate — that pod's on-CPU profile, restricted to the
	// span's [start, end] window.
	fmt.Println("\ncorrelated profile (folded, flamegraph.pl format):")
	fmt.Print(df.Server.FormatProfile(sp.StartTime, sp.EndTime,
		server.ProfileFilter{Pod: d.Tags.Pod}, 5))

	verdict := faults.LocalizeCPUHog(df.Server, from, to)
	fmt.Printf("\nroot cause localized: pod %q, frame %q (%d samples, %.1fms self time)\n",
		verdict.Pod, verdict.TopFrame, verdict.Samples, ms(verdict.SelfTime))
	fmt.Println("the trace names the pod; the profile names the function — both from")
	fmt.Println("the same zero-code agent, sharing one resource-tag vocabulary.")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

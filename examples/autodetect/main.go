// autodetect demonstrates the continuous-detection plane: nobody is
// watching dashboards and nobody runs a query — the alerting engine rides
// the 1 s rollup stream, learns each endpoint's baseline, and when a bug
// ships it fires a classified alert with the suspect already localized and
// a drill-down filter attached.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"deepflow"
	"deepflow/internal/alerting"
	"deepflow/internal/faults"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
)

func main() {
	env := deepflow.NewEnv(7)
	topo := microsim.BuildSpringBootDemo(env, nil)

	opts := deepflow.DefaultOptions()
	cfg := alerting.DefaultConfig()
	opts.Alerting = &cfg
	// Detection wants 1 s evaluation cadence and a matching session slot so
	// failure evidence reaches the rollup stream within the EvalDelay.
	opts.FlushInterval = time.Second
	opts.Agent.SessionWindow = time.Second

	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, opts)
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d agents; detection plane armed (nobody is watching)\n", df.Agents())

	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 8, 40)
	gen.Path = "/api/items"
	gen.Start(13 * time.Second)

	// Eight seconds of healthy traffic: the EWMA baselines warm up.
	env.Run(8 * time.Second)
	fmt.Printf("T+8s: baselines warm, %d alerts (healthy traffic absorbs jitter)\n",
		len(df.Alerts.Alerts()))

	// A bad deploy ships: the backend starts answering 500 on the hot path.
	faults.InjectPodError(env.Component("sb-backend"), "/api/items", 500)
	fmt.Println("T+8s: a regression ships — sb-backend now answers 500 on /api/items")

	env.Run(6 * time.Second)
	df.FlushAll()

	// The engine fired on its own: classified, timestamped, suspect named,
	// drill-down attached — zero operator calls.
	fmt.Println("\nself-raised alert stream:")
	if err := df.Alerts.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The firing endpoints highlight on the universal service map.
	m := df.Server.ServiceMap(sim.Epoch, env.Eng.Now())
	m.MarkFiring(df.Alerts.FiringEndpoints())
	fmt.Println("\nservice map with the firing endpoint highlighted:")
	fmt.Print(m.Text())
}

// servicemap renders the universal service map over the Bookinfo workload
// with an extra RabbitMQ-style broker whose queue backs up mid-run (the
// §4.1.3 fault). The map is answered entirely from the streaming rollup
// plane — no raw span scan — yet the faulty edge stands out by its TCP
// reset counter, and one drill-down recovers the full-fidelity spans behind
// that edge.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(5)
	topo := microsim.BuildBookinfo(env, nil)
	cluster := topo.Cluster
	nodes := cluster.Nodes()

	// Alongside Bookinfo: an order service publishing to a RabbitMQ-like
	// broker whose consumer drains too slowly — the queue backs up and the
	// broker resets publisher connections.
	orders, _ := cluster.AddPod("bi-orders-0", "default", "orders", nodes[2], nil)
	mqPod, _ := cluster.AddPod("bi-rabbitmq-0", "default", "rabbitmq", nodes[2], nil)
	microsim.MustComponent(env, microsim.Config{
		Name: "rabbitmq", Host: mqPod.Host, Port: 5672, Proto: trace.L7MQTT,
		Workers: 16, QueueMode: true, QueueCap: 20,
		ServiceTime: sim.Const{D: 100 * time.Microsecond},
		DrainTime:   sim.Const{D: 400 * time.Millisecond},
	})

	df := deepflow.New(env, []*k8s.Cluster{cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	web := microsim.NewLoadGen(env, "load", topo.ClientHost, topo.Entry, 8, 150)
	web.Path = "/productpage"
	web.Start(3 * time.Second)
	pub := microsim.NewLoadGen(env, "orders", orders.Host, env.Component("rabbitmq"), 32, 300)
	pub.Path = "orders/created"
	pub.Start(3 * time.Second)
	env.Run(4 * time.Second)
	df.FlushAll()

	// The whole map comes from the rollup tiers: O(buckets), not O(spans).
	m := df.Server.ServiceMap(sim.Epoch, env.Eng.Now())
	fmt.Print(m.Text())

	// The faulty hop announces itself: the one edge carrying TCP resets.
	for _, e := range m.Edges {
		if e.Resets == 0 && e.FlowResets == 0 {
			continue
		}
		fmt.Printf("\nfaulty edge: %s → %s (%s): %d requests, %d errors, %d connection resets\n",
			e.Client, e.Server, e.L7, e.Requests, e.Errors, e.Resets+e.FlowResets)

		// Drill down: the edge's SpanFilter reproduces its raw spans.
		spans := df.Server.EdgeSpans(m, e, 3)
		fmt.Printf("drill-down (%d of %d spans):\n", len(spans), e.Requests)
		for _, sp := range spans {
			dec := df.Server.Decorate(sp)
			fmt.Printf("  span #%-6d pod=%-15s %-20s %-8s rst=%d\n",
				sp.ID, dec.Tags.Pod, sp.RequestType+" "+sp.RequestResource,
				sp.ResponseStatus, sp.Net.Resets)
		}
	}
	fmt.Println("\npaper §4.1.3: the service map narrows \"errors somewhere\" to one")
	fmt.Println("client→server edge whose reset counter implicates the network — then")
	fmt.Println("a single drill-down recovers the raw spans behind that edge.")
}

// Quickstart: bring up a simulated microservice chain, deploy DeepFlow in
// zero code, send traffic, and print an assembled distributed trace.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

func main() {
	// 1. A simulated environment with the Spring Boot demo workload:
	//    front → backend → mysql across a three-node cluster. None of the
	//    components is instrumented.
	env := deepflow.NewEnv(1)
	topo := microsim.BuildSpringBootDemo(env, nil)

	// 2. Deploy DeepFlow: one agent per pod/node/machine plus the server.
	//    No component is modified, recompiled, or restarted.
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	// 3. Drive load for two (virtual) seconds.
	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 8, 150)
	gen.Path = "/api/items"
	gen.Start(2 * time.Second)
	env.Run(3 * time.Second)
	df.FlushAll()

	// 4. Query: list recent spans, pick the load generator's client span,
	//    and assemble its distributed trace (Algorithm 1).
	spans := df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0)
	fmt.Printf("%d requests completed; %d spans collected\n\n", gen.Completed, len(spans))
	for _, sp := range spans {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess {
			tr := df.Server.Trace(sp.ID)
			fmt.Printf("one request, %d spans, depth %d:\n\n%s", tr.Len(), tr.Depth(),
				df.Server.FormatTrace(tr))
			break
		}
	}
}

// mqreset reproduces the paper's §4.1.3 case study: a message queue's
// backlog causes TCP connection resets; correlating traces with network
// metrics (tag-based correlation, §3.4) pinpoints the responsible flow in
// one query — where an application-level tracer only sees "errors".
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/faults"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/simnet"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(5)
	cluster := k8s.NewCluster("prod", env.Net)
	machine := env.Net.AddHost("machine-1", simnet.KindMachine, nil)
	node := cluster.AddNode("node-1", machine)
	pub, _ := cluster.AddPod("order-svc-0", "default", "order-svc", node, nil)
	mqPod, _ := cluster.AddPod("rabbitmq-0", "default", "rabbitmq", node, nil)

	// A RabbitMQ-like broker whose consumer drains slowly: the queue
	// backs up and the broker starts resetting publisher connections.
	microsim.MustComponent(env, microsim.Config{
		Name: "rabbitmq", Host: mqPod.Host, Port: 5672, Proto: trace.L7MQTT,
		Workers: 16, QueueMode: true, QueueCap: 20,
		ServiceTime: sim.Const{D: 100 * time.Microsecond},
		DrainTime:   sim.Const{D: 400 * time.Millisecond},
	})

	df := deepflow.New(env, []*k8s.Cluster{cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	gen := microsim.NewLoadGen(env, "order-svc", pub.Host, env.Component("rabbitmq"), 32, 400)
	gen.Path = "orders/created"
	gen.Start(3 * time.Second)
	env.Run(4 * time.Second)
	df.FlushAll()

	fmt.Printf("publisher: %d ok, %d failed publishes\n", gen.Completed, gen.Errors)
	fmt.Printf("broker resets issued: %d\n\n", env.Component("rabbitmq").Resets)

	// The §4.1.3 workflow: start from failing spans, pull the correlated
	// network metrics, find the resets.
	src := faults.LocalizeResets(df.Server, sim.Epoch, env.Eng.Now())
	fmt.Printf("metric-by-metric analysis: flow %s shows %.0f TCP resets (host %s)\n",
		src.Flow, src.Resets, src.Host)
	fmt.Println("\npaper §4.1.3: \"users found in one minute that the queue backlog of")
	fmt.Println("RabbitMQ was causing the TCP connection resets\" — application-level")
	fmt.Println("tracers could only see the affected spans, not the network cause.")
}

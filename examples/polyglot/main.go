// polyglot traces a chain where every hop speaks a different protocol —
// HTTP gateway → gRPC cart service → PostgreSQL database, with an AMQP
// audit event published per request — all in zero code. The newer codecs
// (gRPC, PostgreSQL, AMQP) register through the same self-describing
// parser table as the builtins, and because their responses carry status
// in fixed header fields, the agent resolves them on its lightweight fast
// path; the printed agent stats show the fast/slow split.
package main

import (
	"fmt"
	"log"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

func main() {
	env := deepflow.NewEnv(21)
	topo := microsim.BuildPolyglot(env)
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		log.Fatal(err)
	}

	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 8, 150)
	gen.Path = "/cart/42"
	gen.Start(2 * time.Second)
	env.Run(3 * time.Second)
	df.FlushAll()

	fmt.Printf("completed: %d requests through the gateway\n\n", gen.Completed)

	// The service map shows one edge per protocol hop.
	m := df.Server.ServiceMap(sim.Epoch, env.Eng.Now())
	fmt.Print(m.Text())

	// One trace crosses four protocols.
	for _, sp := range df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0) {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess && sp.ResponseStatus == "ok" {
			tr := df.TraceOf(sp.ID)
			protos := map[trace.L7Proto]int{}
			for _, s := range tr.Spans {
				protos[s.L7]++
			}
			fmt.Printf("\none request, %d spans, protocols crossed:\n", tr.Len())
			for _, p := range []trace.L7Proto{trace.L7HTTP, trace.L7GRPC, trace.L7Postgres, trace.L7AMQP} {
				fmt.Printf("  %-12s %d spans\n", p.String(), protos[p])
			}
			break
		}
	}

	// The agent pipeline split: responses on header-capable protocols
	// resolved without full parsing.
	fast, slow, giveups := df.AgentPathStats()
	fmt.Printf("\nagent pipeline: %d fast-path responses, %d slow-path messages, %d inference give-ups\n",
		fast, slow, giveups)
	fmt.Println("\nzero instrumentation in any service — the gateway, the gRPC cart,")
	fmt.Println("the database, and the broker are all traced from the kernel.")
}

package deepflow_test

import (
	"encoding/json"
	"testing"
	"time"

	"deepflow"
	"deepflow/internal/k8s"
	"deepflow/internal/microsim"
	"deepflow/internal/sim"
	"deepflow/internal/trace"
)

// TestPublicAPIQuickstart drives the documented quickstart flow end to end
// through the root package.
func TestPublicAPIQuickstart(t *testing.T) {
	env := deepflow.NewEnv(1)
	topo := microsim.BuildSpringBootDemo(env, nil)
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		t.Fatal(err)
	}
	if df.Agents() == 0 {
		t.Fatal("no agents deployed")
	}

	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 4, 100)
	gen.Path = "/api/items"
	gen.Start(time.Second)
	env.Run(2 * time.Second)
	df.FlushAll()

	if gen.Completed == 0 || gen.Errors > 0 {
		t.Fatalf("load: %d ok, %d errors", gen.Completed, gen.Errors)
	}
	spans := df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0)
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}

	var start *trace.Span
	for _, sp := range spans {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess {
			start = sp
			break
		}
	}
	tr := df.TraceOf(start.ID)
	if tr.Len() < 15 {
		t.Fatalf("trace = %d spans", tr.Len())
	}

	// JSON export round-trips and carries decoded tags.
	raw, err := df.Server.ExportTraceJSON(tr)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		RootSpanID uint64 `json:"root_span_id"`
		SpanCount  int    `json:"span_count"`
		Spans      []struct {
			TapSide string `json:"tap_side"`
			Pod     string `json:"pod"`
			Service string `json:"service"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	if decoded.SpanCount != tr.Len() || decoded.RootSpanID != uint64(tr.Root.ID) {
		t.Fatalf("export header = %+v", decoded)
	}
	var podTagged bool
	for _, sp := range decoded.Spans {
		if sp.Pod != "" && sp.Service != "" {
			podTagged = true
		}
	}
	if !podTagged {
		t.Fatal("export has no decoded pod/service tags")
	}

	df.Stop()
}

// TestDeterministicRuns: the same seed reproduces the same span population
// — the property all experiments rely on.
func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		env := deepflow.NewEnv(99)
		topo := microsim.BuildSpringBootDemo(env, nil)
		df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
		if err := df.DeployAll(); err != nil {
			t.Fatal(err)
		}
		gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 4, 120)
		gen.Start(time.Second)
		env.Run(2 * time.Second)
		df.FlushAll()
		return gen.Completed, df.Server.SpansIngested()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, s1, c2, s2)
	}
	if c1 == 0 || s1 == 0 {
		t.Fatal("empty run")
	}
}

// TestPolyglotProtocolsInServiceMap drives the polyglot topology — HTTP
// gateway → gRPC cart → PostgreSQL + AMQP — and checks that each of the
// newer protocol decoders produces spans that land on the universal
// service map as their own edges.
func TestPolyglotProtocolsInServiceMap(t *testing.T) {
	env := deepflow.NewEnv(21)
	topo := microsim.BuildPolyglot(env)
	df := deepflow.New(env, []*k8s.Cluster{topo.Cluster}, nil, deepflow.DefaultOptions())
	if err := df.DeployAll(); err != nil {
		t.Fatal(err)
	}
	gen := microsim.NewLoadGen(env, "wrk", topo.ClientHost, topo.Entry, 4, 100)
	gen.Path = "/cart/42"
	gen.Start(time.Second)
	env.Run(2 * time.Second)
	df.FlushAll()
	if gen.Completed == 0 || gen.Errors > 0 {
		t.Fatalf("load: %d ok, %d errors", gen.Completed, gen.Errors)
	}

	m := df.Server.ServiceMap(sim.Epoch, env.Eng.Now())
	seen := map[trace.L7Proto]bool{}
	for _, e := range m.Edges {
		seen[e.L7] = true
	}
	for _, p := range []trace.L7Proto{trace.L7HTTP, trace.L7GRPC, trace.L7Postgres, trace.L7AMQP} {
		if !seen[p] {
			t.Errorf("service map has no %v edge (got %v)", p, seen)
		}
	}

	// One gateway request's trace must cross all four protocols.
	var start *trace.Span
	for _, sp := range df.Server.SpanList(sim.Epoch, sim.Epoch.Add(time.Hour), 0) {
		if sp.ProcessName == "wrk" && sp.TapSide == trace.TapClientProcess && sp.ResponseStatus == "ok" {
			start = sp
			break
		}
	}
	if start == nil {
		t.Fatal("no client span found")
	}
	tr := df.TraceOf(start.ID)
	inTrace := map[trace.L7Proto]bool{}
	for _, sp := range tr.Spans {
		inTrace[sp.L7] = true
	}
	for _, p := range []trace.L7Proto{trace.L7HTTP, trace.L7GRPC, trace.L7Postgres, trace.L7AMQP} {
		if !inTrace[p] {
			t.Errorf("trace (%d spans) crosses no %v hop", tr.Len(), p)
		}
	}
}

GO ?= go

.PHONY: build test vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet runs Go's own static analysis, dfvet (the repo's eBPF verifier CLI)
# over every hook program the agent ships, and dflint (the invariant
# linter) over the whole tree: determinism, lockcheck, metricnames, and
# stickyerr, budgeted by .dflint-budget.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/dfvet
	$(GO) run ./cmd/dflint ./...

# check runs vet + dfvet, the race detector over the whole tree, and the
# self-monitoring overhead guard (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench 'BenchmarkHookPair' -benchmem -run '^$$' ./internal/agent

GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check runs vet, the race detector over the concurrency-bearing packages,
# and the self-monitoring overhead guard (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench 'BenchmarkHookPair' -benchmem -run '^$$' ./internal/agent
